package maxaf

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/ltm"
	"repro/internal/weights"
)

func line(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(graph.Node(i), graph.Node(i+1))
	}
	return b.Build()
}

func randomConnected(seed int64, n, extra int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(graph.Node(i), graph.Node(rng.Intn(i)))
	}
	for i := 0; i < extra; i++ {
		b.AddEdge(graph.Node(rng.Intn(n)), graph.Node(rng.Intn(n)))
	}
	return b.Build()
}

func mustInstance(t *testing.T, g *graph.Graph, s, tt graph.Node) *ltm.Instance {
	t.Helper()
	in, err := ltm.NewInstance(g, weights.NewDegree(g), s, tt)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestSolveLine(t *testing.T) {
	// Line 0-1-2-3: the only useful invitation set is {2,3}; budget 2
	// must find it and budget 1 must cover nothing.
	g := line(4)
	in := mustInstance(t, g, 0, 3)
	ctx := context.Background()
	res, err := Solve(ctx, in, Config{Budget: 2, Realizations: 5000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Invited.Members()
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Errorf("Invited = %v, want [2 3]", got)
	}
	if res.CoveredFraction < 0.4 || res.CoveredFraction > 0.6 {
		t.Errorf("CoveredFraction = %v, want ~0.5", res.CoveredFraction)
	}
	res1, err := Solve(ctx, in, Config{Budget: 1, Realizations: 5000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res1.CoveredFraction != 0 {
		t.Errorf("budget 1 covered %v, want 0 (path needs 2 nodes)", res1.CoveredFraction)
	}
}

func TestSolveValidation(t *testing.T) {
	g := line(4)
	in := mustInstance(t, g, 0, 3)
	if _, err := Solve(context.Background(), in, Config{Budget: 0}); err == nil {
		t.Error("budget 0 accepted")
	}
}

func TestSolveUnreachable(t *testing.T) {
	b := graph.NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(3, 4)
	g := b.Build()
	in := mustInstance(t, g, 0, 4)
	_, err := Solve(context.Background(), in, Config{Budget: 3, Realizations: 500})
	if !errors.Is(err, core.ErrTargetUnreachable) {
		t.Errorf("err = %v, want ErrTargetUnreachable", err)
	}
}

// TestSolveBeatsBaselinesAtBudget: on random graphs, the realization-based
// budgeted solution should (weakly) beat HD at the same budget, measured
// by an independent estimator.
func TestSolveBeatsBaselinesAtBudget(t *testing.T) {
	ctx := context.Background()
	checked := 0
	for seed := int64(1); seed <= 10 && checked < 3; seed++ {
		g := randomConnected(seed*31, 40, 50)
		s, tt := graph.Node(0), graph.Node(39)
		if g.HasEdge(s, tt) {
			continue
		}
		in := mustInstance(t, g, s, tt)
		all := graph.NewNodeSet(g.NumNodes())
		all.Fill()
		pmax, err := engine.New(in).EstimateF(ctx, all, 60000, 2, seed)
		if err != nil {
			t.Fatal(err)
		}
		if pmax < 0.05 {
			continue
		}
		checked++
		budget := 8
		res, err := Solve(ctx, in, Config{Budget: budget, Realizations: 30000, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if res.Invited.Len() > budget {
			t.Fatalf("budget violated: %d > %d", res.Invited.Len(), budget)
		}
		fMax, err := engine.New(in).EstimateF(ctx, res.Invited, 60000, 2, seed+1)
		if err != nil {
			t.Fatal(err)
		}
		hdOrder := baselines.HighDegree{}.Rank(in)
		hdSet := baselines.PrefixSet(g.NumNodes(), hdOrder, budget)
		fHD, err := engine.New(in).EstimateF(ctx, hdSet, 60000, 2, seed+2)
		if err != nil {
			t.Fatal(err)
		}
		if fMax+0.02 < fHD {
			t.Errorf("seed %d: budgeted maxaf %v below HD %v", seed, fMax, fHD)
		}
	}
	if checked == 0 {
		t.Skip("no usable pair")
	}
}

func TestSolveMonotoneInBudget(t *testing.T) {
	g := randomConnected(77, 30, 40)
	s, tt := graph.Node(0), graph.Node(29)
	if g.HasEdge(s, tt) {
		t.Skip("adjacent pair")
	}
	in := mustInstance(t, g, s, tt)
	ctx := context.Background()
	prev := -1.0
	for _, budget := range []int{2, 6, 12, 24} {
		res, err := Solve(ctx, in, Config{Budget: budget, Realizations: 20000, Seed: 5})
		if err != nil {
			if errors.Is(err, core.ErrTargetUnreachable) {
				t.Skip("unreachable pair")
			}
			t.Fatal(err)
		}
		if res.CoveredFraction < prev {
			t.Errorf("coverage decreased at budget %d: %v < %v", budget, res.CoveredFraction, prev)
		}
		prev = res.CoveredFraction
	}
}

// TestSolveBudgetsFromPoolParity: the budget-sweep path (one cached
// family, one reused solver, batched coverage re-measurement) must return
// results identical to calling SolveFromPool per budget.
func TestSolveBudgetsFromPoolParity(t *testing.T) {
	g := randomConnected(4, 40, 60)
	if g.HasEdge(0, 39) {
		t.Skip("adjacent s,t")
	}
	in := mustInstance(t, g, 0, 39)
	pool, err := engine.New(in).SamplePool(context.Background(), 12000, 0, 11)
	if err != nil {
		t.Fatal(err)
	}
	if pool.NumType1() == 0 {
		t.Skip("no type-1 realizations")
	}
	budgets := []int{1, 2, 3, 5, 8, 13, 21, 40}
	sweep, err := SolveBudgetsFromPool(context.Background(), in, budgets, pool)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep) != len(budgets) {
		t.Fatalf("%d results for %d budgets", len(sweep), len(budgets))
	}
	for i, b := range budgets {
		single, err := SolveFromPool(context.Background(), in, b, pool)
		if err != nil {
			t.Fatal(err)
		}
		gotM, wantM := sweep[i].Invited.Members(), single.Invited.Members()
		if len(gotM) != len(wantM) {
			t.Fatalf("budget %d: |sweep|=%d |single|=%d", b, len(gotM), len(wantM))
		}
		for j := range gotM {
			if gotM[j] != wantM[j] {
				t.Fatalf("budget %d: invited sets differ at %d", b, j)
			}
		}
		if sweep[i].CoveredFraction != single.CoveredFraction {
			t.Errorf("budget %d: sweep fraction %v != single %v (batched re-measurement must equal the greedy's tally)",
				b, sweep[i].CoveredFraction, single.CoveredFraction)
		}
		if sweep[i].PoolType1 != single.PoolType1 {
			t.Errorf("budget %d: PoolType1 %d != %d", b, sweep[i].PoolType1, single.PoolType1)
		}
	}
	// Error paths: empty sweep and non-positive budgets.
	if _, err := SolveBudgetsFromPool(context.Background(), in, nil, pool); err == nil {
		t.Error("empty budget list accepted")
	}
	if _, err := SolveBudgetsFromPool(context.Background(), in, []int{3, 0}, pool); err == nil {
		t.Error("zero budget accepted")
	}
}
