// Package maxaf implements the *maximum* active friending variant the
// paper positions itself against (Sec. I–II; Yang et al. KDD'13, Yuan et
// al.): given an invitation budget b, maximize the acceptance probability
// f(I) subject to |I| ≤ b.
//
// It reuses the RAF machinery: sample a pool of realizations (Def. 1),
// then greedily commit whole backward paths t(g) — cheapest marginal
// union first — while the budget lasts (setcover.GreedyBudget). Under the
// linear threshold model the objective is supermodular in I (Yuan et
// al.), so node-wise greedy has no guarantee; covering realizations
// whole sidesteps that, exactly as RAF's minimization does.
package maxaf

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/ltm"
	"repro/internal/obs"
	"repro/internal/setcover"
)

// DefaultRealizations is the pool size used when a caller passes
// Realizations ≤ 0.
const DefaultRealizations = 50000

// Config parameterizes a Solve call.
type Config struct {
	// Budget is the maximum invitation-set size; must fit the target
	// (budget ≥ 1).
	Budget int
	// Realizations is the pool size l (default DefaultRealizations).
	Realizations int64
	// Seed and Workers control sampling.
	Seed    int64
	Workers int
}

// Result is the budgeted solution.
type Result struct {
	// Invited is the chosen invitation set (|Invited| ≤ Budget).
	Invited *graph.NodeSet
	// CoveredFraction is the fraction of the sampled pool covered — the
	// pool's estimate of f(Invited).
	CoveredFraction float64
	// PoolType1 is the number of type-1 realizations sampled.
	PoolType1 int
}

// Solve maximizes estimated acceptance probability under the budget,
// sampling a fresh pool through the engine. For repeated solves on one
// instance, sample a pool once (e.g. via an engine Session) and call
// SolveFromPool.
func Solve(ctx context.Context, in *ltm.Instance, cfg Config) (*Result, error) {
	if cfg.Budget <= 0 {
		return nil, fmt.Errorf("maxaf: budget %d must be positive", cfg.Budget)
	}
	l := cfg.Realizations
	if l <= 0 {
		l = DefaultRealizations
	}
	pool, err := engine.New(in).SamplePool(ctx, l, cfg.Workers, cfg.Seed)
	if err != nil {
		return nil, err
	}
	return SolveFromPool(ctx, in, cfg.Budget, pool)
}

// SolveFromPool runs the budgeted max-coverage greedy against an existing
// realization pool, through the pool's cached set-cover family: repeated
// budget solves on one pool (budget searches, server traffic) fold and
// index the paths exactly once. A trace on ctx (obs.WithTrace) gets
// family_fold and solve stage spans; tracing off costs nothing.
func SolveFromPool(ctx context.Context, in *ltm.Instance, budget int, pool *engine.Pool) (*Result, error) {
	res, _, err := SolveFromPoolSolver(ctx, in, budget, pool, nil)
	return res, err
}

// SolveFromPoolSolver is SolveFromPool with caller-held solver scratch:
// the batched top-k path solves many candidates' pools in turn, and
// rebinding one Solver per pool amortizes the marginal/bucket/bitset
// allocations across the whole batch. A nil solver allocates fresh; the
// (possibly new) solver is returned for the next pool. Results are
// identical to SolveFromPool's — Solver.Rebind guarantees rebound
// scratch solves exactly like fresh scratch.
func SolveFromPoolSolver(ctx context.Context, in *ltm.Instance, budget int, pool *engine.Pool, solver *setcover.Solver) (*Result, *setcover.Solver, error) {
	if budget <= 0 {
		return nil, solver, fmt.Errorf("maxaf: budget %d must be positive", budget)
	}
	if pool.NumType1() == 0 {
		return nil, solver, fmt.Errorf("%w: no type-1 realization in %d draws", core.ErrTargetUnreachable, pool.Total())
	}
	fam, err := pool.FamilyCtx(ctx)
	if err != nil {
		return nil, solver, fmt.Errorf("maxaf: set family: %w", err)
	}
	if solver == nil {
		solver = setcover.NewSolver(fam)
	} else {
		solver.Rebind(fam)
	}
	solver.SetTrace(obs.TraceFrom(ctx))
	sol, err := solver.SolveBudget(budget)
	if err != nil {
		return nil, solver, fmt.Errorf("maxaf: budgeted cover: %w", err)
	}
	invited := graph.NewNodeSet(in.Graph().NumNodes())
	for _, v := range sol.Union {
		invited.Add(v)
	}
	return &Result{
		Invited:         invited,
		CoveredFraction: float64(sol.Covered) / float64(pool.Total()),
		PoolType1:       pool.NumType1(),
	}, solver, nil
}

// SolveBudgetsFromPool runs the budgeted greedy for every budget against
// one pool, amortizing everything amortizable: the pool's set-cover
// family is folded once (cached on the pool), a single Solver's scratch
// is reused across the whole sweep, and the in-pool covered fractions are
// re-measured in one batched coverage query (Index.CoverageCounts)
// against the pool's inverted index instead of one scan per budget.
// Results are identical to calling SolveFromPool per budget.
func SolveBudgetsFromPool(ctx context.Context, in *ltm.Instance, budgets []int, pool *engine.Pool) ([]*Result, error) {
	if len(budgets) == 0 {
		return nil, fmt.Errorf("maxaf: no budgets given")
	}
	if pool.NumType1() == 0 {
		return nil, fmt.Errorf("%w: no type-1 realization in %d draws", core.ErrTargetUnreachable, pool.Total())
	}
	fam, err := pool.FamilyCtx(ctx)
	if err != nil {
		return nil, fmt.Errorf("maxaf: set family: %w", err)
	}
	solver := setcover.NewSolver(fam)
	solver.SetTrace(obs.TraceFrom(ctx))
	results := make([]*Result, len(budgets))
	sets := make([]*graph.NodeSet, len(budgets))
	n := in.Graph().NumNodes()
	for i, b := range budgets {
		if b <= 0 {
			return nil, fmt.Errorf("maxaf: budget %d must be positive", b)
		}
		sol, err := solver.SolveBudget(b)
		if err != nil {
			return nil, fmt.Errorf("maxaf: budgeted cover: %w", err)
		}
		invited := graph.NewNodeSet(n)
		for _, v := range sol.Union {
			invited.Add(v)
		}
		sets[i] = invited
		results[i] = &Result{Invited: invited, PoolType1: pool.NumType1()}
	}
	// One batched postings traversal re-measures every chosen set; the
	// counts coincide with the greedy's own Covered tallies (regression-
	// tested), so this is a cross-check as much as a measurement.
	counts := pool.Index().CoverageCounts(sets)
	for i, c := range counts {
		results[i].CoveredFraction = float64(c) / float64(pool.Total())
	}
	return results, nil
}
