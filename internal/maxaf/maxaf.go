// Package maxaf implements the *maximum* active friending variant the
// paper positions itself against (Sec. I–II; Yang et al. KDD'13, Yuan et
// al.): given an invitation budget b, maximize the acceptance probability
// f(I) subject to |I| ≤ b.
//
// It reuses the RAF machinery: sample a pool of realizations (Def. 1),
// then greedily commit whole backward paths t(g) — cheapest marginal
// union first — while the budget lasts (setcover.GreedyBudget). Under the
// linear threshold model the objective is supermodular in I (Yuan et
// al.), so node-wise greedy has no guarantee; covering realizations
// whole sidesteps that, exactly as RAF's minimization does.
package maxaf

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/ltm"
	"repro/internal/realization"
	"repro/internal/setcover"
)

// Config parameterizes a Solve call.
type Config struct {
	// Budget is the maximum invitation-set size; must fit the target
	// (budget ≥ 1).
	Budget int
	// Realizations is the pool size l (default 50000).
	Realizations int64
	// Seed and Workers control sampling.
	Seed    int64
	Workers int
}

// Result is the budgeted solution.
type Result struct {
	// Invited is the chosen invitation set (|Invited| ≤ Budget).
	Invited *graph.NodeSet
	// CoveredFraction is the fraction of the sampled pool covered — the
	// pool's estimate of f(Invited).
	CoveredFraction float64
	// PoolType1 is the number of type-1 realizations sampled.
	PoolType1 int
}

// Solve maximizes estimated acceptance probability under the budget.
func Solve(ctx context.Context, in *ltm.Instance, cfg Config) (*Result, error) {
	if cfg.Budget <= 0 {
		return nil, fmt.Errorf("maxaf: budget %d must be positive", cfg.Budget)
	}
	l := cfg.Realizations
	if l <= 0 {
		l = 50000
	}
	pool, err := realization.SamplePool(ctx, in, l, cfg.Workers, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if pool.NumType1() == 0 {
		return nil, fmt.Errorf("%w: no type-1 realization in %d draws", core.ErrTargetUnreachable, l)
	}
	inst := &setcover.Instance{UniverseSize: in.Graph().NumNodes()}
	inst.Sets = make([][]int32, 0, pool.NumType1())
	for _, p := range pool.Type1 {
		inst.Sets = append(inst.Sets, p)
	}
	sol, err := setcover.GreedyBudget(inst, cfg.Budget)
	if err != nil {
		return nil, fmt.Errorf("maxaf: budgeted cover: %w", err)
	}
	invited := graph.NewNodeSet(in.Graph().NumNodes())
	for _, v := range sol.Union {
		invited.Add(v)
	}
	return &Result{
		Invited:         invited,
		CoveredFraction: float64(sol.Covered) / float64(pool.Total),
		PoolType1:       pool.NumType1(),
	}, nil
}
