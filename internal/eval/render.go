package eval

import (
	"fmt"

	"repro/internal/gen"
	"repro/internal/tablewriter"
)

// RenderTable1 renders Table I (dataset statistics) for generated analogs.
// stats is keyed in registry order.
func RenderTable1(names []string, stats []gen.Stats) *tablewriter.Table {
	t := tablewriter.New("Table I: Datasets (synthetic analogs)",
		"dataset", "nodes", "edges", "edges/node", "max deg", "giant comp")
	for i, st := range stats {
		name := fmt.Sprintf("#%d", i)
		if i < len(names) {
			name = names[i]
		}
		t.AddRow(name, st.Nodes, st.Edges, st.EdgesPerNode, st.MaxDegree, st.GiantCompFrac)
	}
	return t
}

// RenderFig3 renders the basic-experiment series (Fig. 3) for one dataset.
func RenderFig3(dataset string, rows []Fig3Row) *tablewriter.Table {
	t := tablewriter.New(fmt.Sprintf("Fig. 3 (%s): acceptance probability vs alpha", dataset),
		"alpha", "pmax", "RAF", "HD", "SP", "avg |I|", "pairs", "skipped")
	for _, r := range rows {
		t.AddRow(r.Alpha, r.Pmax, r.RAF, r.HD, r.SP, r.AvgSize, r.Pairs, r.Skipped)
	}
	return t
}

// RenderGrowth renders a Fig. 4 / Fig. 5 series for one dataset.
func RenderGrowth(dataset string, res *GrowthResult) *tablewriter.Table {
	fig := "Fig. 4"
	if res.Baseline == "SP" {
		fig = "Fig. 5"
	}
	t := tablewriter.New(
		fmt.Sprintf("%s (%s): |I_%s|/|I_RAF| vs f(I_%s)/f(I_RAF)", fig, dataset, res.Baseline, res.Baseline),
		"f-ratio bin", "avg size ratio", "points")
	for _, b := range res.Bins {
		t.AddRow(b.XCenter, b.SizeRatio, b.Count)
	}
	return t
}

// RenderTable2 renders Table II rows across datasets.
func RenderTable2(names []string, rows []*VmaxRow) *tablewriter.Table {
	t := tablewriter.New("Table II: Comparing with Vmax (alpha = 0.1)",
		"dataset", "avg |Vmax|", "avg |I_RAF|", "avg ratio", "pairs")
	for i, r := range rows {
		name := fmt.Sprintf("#%d", i)
		if i < len(names) {
			name = names[i]
		}
		t.AddRow(name, r.AvgVmax, r.AvgRAF, r.AvgRatio, r.PairsUsed)
	}
	return t
}

// RenderFig6 renders the realization sweep (Fig. 6).
func RenderFig6(dataset string, pts []SweepPoint) *tablewriter.Table {
	t := tablewriter.New(fmt.Sprintf("Fig. 6 (%s): acceptance probability vs number of realizations", dataset),
		"realizations", "f(I)", "|I|")
	for _, p := range pts {
		t.AddRow(p.L, p.F, p.Size)
	}
	return t
}

// RenderWarmRestart renders the warm-restart experiment for one dataset.
func RenderWarmRestart(dataset string, res *WarmRestartResult) *tablewriter.Table {
	t := tablewriter.New(fmt.Sprintf("Warm restart (%s): cold sampling vs snapshot-warmed pools", dataset),
		"pairs", "cold ms", "warm ms", "speedup", "spill KiB", "loads", "draws saved", "identical")
	t.AddRow(res.Pairs,
		float64(res.Cold.Microseconds())/1000,
		float64(res.Warm.Microseconds())/1000,
		res.Speedup, res.SpillBytes>>10, res.SpillLoads, res.DrawsSaved, res.Identical)
	return t
}

// RenderTransport renders the transport-parity experiment for one dataset.
func RenderTransport(dataset string, res *TransportParityResult) *tablewriter.Table {
	t := tablewriter.New(fmt.Sprintf("Transport parity (%s): direct vs pipe vs HTTP", dataset),
		"queries", "direct ms", "pipe ms", "http ms", "mismatches", "identical")
	t.AddRow(res.Queries,
		float64(res.Direct.Microseconds())/1000,
		float64(res.Pipe.Microseconds())/1000,
		float64(res.HTTP.Microseconds())/1000,
		res.Mismatches, res.Identical)
	return t
}

// RenderChurn renders the mutation-churn experiment for one dataset.
func RenderChurn(dataset string, res *ChurnResult) *tablewriter.Table {
	t := tablewriter.New(fmt.Sprintf("Mutation churn (%s): repair vs discard-and-resample", dataset),
		"pairs", "epochs", "migrated", "dropped", "repair draws", "discard draws", "saved frac", "identical")
	t.AddRow(res.Pairs, res.Epochs, res.PairsMigrated, res.PairsDropped,
		res.RepairDraws, res.DiscardDraws, res.SavedFraction, res.Identical)
	return t
}

// RenderPairs summarizes a sampled pair set.
func RenderPairs(dataset string, pairs []Pair) *tablewriter.Table {
	t := tablewriter.New(fmt.Sprintf("Sampled pairs (%s)", dataset),
		"s", "t", "pmax")
	for _, p := range pairs {
		t.AddRow(p.S, p.T, p.Pmax)
	}
	return t
}
