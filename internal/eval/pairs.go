// Package eval is the experiment harness that regenerates every table and
// figure of the paper's evaluation section (Sec. IV): the (s,t)-pair
// sampling protocol, the basic experiment (Fig. 3), the HD/SP growth
// comparisons (Figs. 4–5), the V_max comparison (Table II), the
// realization-count sweep (Fig. 6) and the dataset statistics (Table I).
package eval

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/ltm"
	"repro/internal/rng"
	"repro/internal/weights"
)

// ErrNoPairs reports that pair sampling could not find any (s,t) pair
// meeting the p_max threshold.
var ErrNoPairs = errors.New("eval: no (s,t) pair with p_max above threshold")

// Pair is one sampled (initiator, target) instance with its estimated
// p_max.
type Pair struct {
	S, T graph.Node
	// Pmax is the screening estimate of p_max (reverse Monte Carlo).
	Pmax float64
}

// PairConfig controls pair sampling.
type PairConfig struct {
	// Count is the number of pairs to select (the paper uses 500).
	Count int
	// MinPmax is the paper's p_max ≥ 0.01 filter.
	MinPmax float64
	// MaxPmax, when positive, additionally rejects pairs whose p_max
	// exceeds it. The paper's graphs are large and sparse, so its random
	// pairs land in the p_max ≈ 0.01–0.1 regime; on scaled-down analogs a
	// cap is needed to stay in that regime (nearby pairs with p_max ≈ 1
	// make the minimization trivially satisfiable with a couple of nodes
	// and wash out the comparative shapes). 0 disables the cap.
	MaxPmax float64
	// PreferDistant, when set, keeps sampling for the full attempt budget
	// and returns the Count pairs with the LOWEST p_max above MinPmax.
	// This adapts the paper's distant-pair regime to any scale: p_max of
	// random pairs grows as the analog shrinks, so a hard MaxPmax that is
	// right at one scale is unsatisfiable at another, while lowest-k
	// selection degrades gracefully.
	PreferDistant bool
	// ScreenTrials is the Monte-Carlo budget per candidate pair.
	ScreenTrials int64
	// MaxAttempts bounds the search (default 200·Count).
	MaxAttempts int
	// Seed fixes the sampled sequence; Workers bounds parallelism.
	Seed    int64
	Workers int
}

func (c *PairConfig) withDefaults() PairConfig {
	out := *c
	if out.Count <= 0 {
		out.Count = 1
	}
	if out.MinPmax <= 0 {
		out.MinPmax = 0.01
	}
	if out.ScreenTrials <= 0 {
		out.ScreenTrials = 3000
	}
	if out.MaxAttempts <= 0 {
		out.MaxAttempts = 200 * out.Count
	}
	return out
}

// SamplePairs draws random (s,t) pairs from g, keeps those whose screening
// p_max estimate reaches MinPmax (the paper's protocol: "randomly select
// 500 pairs of s and t with p_max no less than 0.01"), and returns up to
// Count of them.
func SamplePairs(ctx context.Context, g *graph.Graph, w weights.Scheme, cfg PairConfig) ([]Pair, error) {
	c := cfg.withDefaults()
	n := g.NumNodes()
	if n < 3 {
		return nil, fmt.Errorf("%w: graph too small (%d nodes)", ErrNoPairs, n)
	}
	r := rng.DeriveRand(c.Seed, 0x9A17)
	all := graph.NewNodeSet(n)
	all.Fill()
	// In PreferDistant mode, gather a multiple of Count candidates and
	// keep the lowest-p_max ones; otherwise return the first Count
	// passing the filters.
	gatherTarget := c.Count
	if cfg.PreferDistant {
		gatherTarget = 6 * c.Count
	}
	var pairs []Pair
	for attempt := 0; attempt < c.MaxAttempts && len(pairs) < gatherTarget; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		s := graph.Node(r.Intn(n))
		t := graph.Node(r.Intn(n))
		if s == t || g.HasEdge(s, t) || g.Degree(s) == 0 || g.Degree(t) == 0 {
			continue
		}
		in, err := ltm.NewInstance(g, w, s, t)
		if err != nil {
			continue
		}
		pmax, err := engine.New(in).EstimateF(ctx, all, c.ScreenTrials, c.Workers, rng.Derive(c.Seed, uint64(attempt)))
		if err != nil {
			return nil, err
		}
		if pmax < c.MinPmax || (c.MaxPmax > 0 && pmax > c.MaxPmax) {
			continue
		}
		pairs = append(pairs, Pair{S: s, T: t, Pmax: pmax})
	}
	if len(pairs) == 0 {
		return nil, fmt.Errorf("%w after %d attempts", ErrNoPairs, c.MaxAttempts)
	}
	if cfg.PreferDistant {
		sort.Slice(pairs, func(i, j int) bool {
			if pairs[i].Pmax != pairs[j].Pmax {
				return pairs[i].Pmax < pairs[j].Pmax
			}
			if pairs[i].S != pairs[j].S {
				return pairs[i].S < pairs[j].S
			}
			return pairs[i].T < pairs[j].T
		})
		if len(pairs) > c.Count {
			pairs = pairs[:c.Count]
		}
	}
	return pairs, nil
}
