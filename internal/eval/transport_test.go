package eval

import (
	"context"
	"errors"
	"testing"
)

func TestTransportParity(t *testing.T) {
	g := testGraph(t)
	cfg := testConfig(t, g, samplePairsForTest(t, g, 3))
	res, err := TransportParity(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 3 requests per pair + one topk + one stats.
	if want := 3*3 + 2; res.Queries != want {
		t.Errorf("Queries = %d, want %d", res.Queries, want)
	}
	if !res.Identical || res.Mismatches != 0 {
		t.Errorf("transports diverged: %+v", res)
	}
	if res.Direct <= 0 || res.Pipe <= 0 || res.HTTP <= 0 {
		t.Errorf("missing timings: %+v", res)
	}

	if _, err := TransportParity(context.Background(), Config{Graph: g, Weights: cfg.Weights}); !errors.Is(err, ErrNoPairs) {
		t.Errorf("no pairs: err = %v", err)
	}
}
