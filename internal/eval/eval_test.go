package eval

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/baselines"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/server"
	"repro/internal/weights"
)

// testGraph builds a modest connected PA graph suitable for fast
// experiment runs.
func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := gen.BarabasiAlbert(300, 4, rand.New(rand.NewSource(17)))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func testConfig(t *testing.T, g *graph.Graph, pairs []Pair) Config {
	t.Helper()
	return Config{
		Graph:           g,
		Weights:         weights.NewDegree(g),
		Pairs:           pairs,
		Alpha:           0.3,
		Eps:             0.05,
		N:               100,
		MaxRealizations: 4000,
		MaxPmaxDraws:    60000,
		EvalTrials:      4000,
		Seed:            5,
		Workers:         2,
	}
}

func samplePairsForTest(t *testing.T, g *graph.Graph, count int) []Pair {
	t.Helper()
	pairs, err := SamplePairs(context.Background(), g, weights.NewDegree(g), PairConfig{
		Count: count, MinPmax: 0.01, ScreenTrials: 1500, Seed: 3, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return pairs
}

func TestSamplePairs(t *testing.T) {
	g := testGraph(t)
	pairs := samplePairsForTest(t, g, 5)
	if len(pairs) == 0 {
		t.Fatal("no pairs")
	}
	for _, p := range pairs {
		if p.S == p.T || g.HasEdge(p.S, p.T) {
			t.Errorf("invalid pair %+v", p)
		}
		if p.Pmax < 0.01 {
			t.Errorf("pair %+v below threshold", p)
		}
	}
}

func TestSamplePairsDeterministic(t *testing.T) {
	g := testGraph(t)
	a := samplePairsForTest(t, g, 3)
	b := samplePairsForTest(t, g, 3)
	if len(a) != len(b) {
		t.Fatal("counts differ")
	}
	for i := range a {
		if a[i].S != b[i].S || a[i].T != b[i].T {
			t.Fatal("pair sequences differ for equal seeds")
		}
	}
}

func TestSamplePairsErrors(t *testing.T) {
	tiny := graph.FromEdges(2, []graph.Edge{{U: 0, V: 1}})
	_, err := SamplePairs(context.Background(), tiny, weights.NewDegree(tiny), PairConfig{Count: 1})
	if !errors.Is(err, ErrNoPairs) {
		t.Errorf("tiny graph err = %v", err)
	}
	// Disconnected graph: every pair fails the threshold.
	b := graph.NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	b.AddEdge(4, 5)
	dg := b.Build()
	_, err = SamplePairs(context.Background(), dg, weights.NewDegree(dg), PairConfig{
		Count: 1, MaxAttempts: 60, ScreenTrials: 200, Seed: 1,
	})
	if !errors.Is(err, ErrNoPairs) {
		t.Errorf("disconnected err = %v", err)
	}
}

func TestBasicExperiment(t *testing.T) {
	g := testGraph(t)
	pairs := samplePairsForTest(t, g, 4)
	cfg := testConfig(t, g, pairs)
	rows, err := BasicExperiment(context.Background(), cfg, []float64{0.1, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Pairs == 0 {
			t.Fatalf("alpha %v: no pairs used", r.Alpha)
		}
		if r.RAF < 0 || r.RAF > 1 || r.HD < 0 || r.SP < 0 {
			t.Errorf("alpha %v: probabilities out of range: %+v", r.Alpha, r)
		}
		if r.AvgSize <= 0 {
			t.Errorf("alpha %v: AvgSize = %v", r.Alpha, r.AvgSize)
		}
		// The paper's headline shape: RAF close to pmax and at least as
		// good as the baselines at equal size (generous slack for MC).
		if r.RAF+0.05 < r.HD || r.RAF+0.05 < r.SP {
			t.Errorf("alpha %v: RAF=%v below baselines HD=%v SP=%v", r.Alpha, r.RAF, r.HD, r.SP)
		}
	}
}

func TestBasicExperimentNoAlphas(t *testing.T) {
	g := testGraph(t)
	cfg := testConfig(t, g, samplePairsForTest(t, g, 1))
	if _, err := BasicExperiment(context.Background(), cfg, nil); err == nil {
		t.Error("empty alpha grid accepted")
	}
}

func TestCompareGrowthHD(t *testing.T) {
	g := testGraph(t)
	pairs := samplePairsForTest(t, g, 3)
	cfg := testConfig(t, g, pairs)
	res, err := CompareGrowth(context.Background(), cfg, baselines.HighDegree{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Baseline != "HD" {
		t.Errorf("baseline = %s", res.Baseline)
	}
	if len(res.Bins) != 5 {
		t.Fatalf("bins = %d, want 5", len(res.Bins))
	}
	total := 0
	for i, b := range res.Bins {
		if math.Abs(b.XCenter-float64(i+1)*0.2) > 1e-9 {
			t.Errorf("bin %d center = %v", i, b.XCenter)
		}
		if b.Count > 0 && b.SizeRatio <= 0 {
			t.Errorf("bin %d: count %d but ratio %v", i, b.Count, b.SizeRatio)
		}
		total += b.Count
	}
	if total == 0 {
		t.Error("no growth points recorded")
	}
	if res.PairsUsed == 0 {
		t.Error("no pairs used")
	}
}

func TestCompareGrowthSP(t *testing.T) {
	g := testGraph(t)
	pairs := samplePairsForTest(t, g, 2)
	cfg := testConfig(t, g, pairs)
	res, err := CompareGrowth(context.Background(), cfg, baselines.ShortestPath{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Baseline != "SP" {
		t.Errorf("baseline = %s", res.Baseline)
	}
}

func TestVmaxExperiment(t *testing.T) {
	g := testGraph(t)
	pairs := samplePairsForTest(t, g, 3)
	cfg := testConfig(t, g, pairs)
	cfg.Alpha = 0.1 // Table II setting
	row, err := VmaxExperiment(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if row.PairsUsed == 0 {
		t.Fatal("no pairs used")
	}
	if row.AvgVmax <= 0 || row.AvgRAF <= 0 {
		t.Errorf("averages: %+v", row)
	}
	// Lemma 7 + minimality: |I_RAF| ≤ |V_max| per pair, so the averages
	// and the ratio obey the same ordering.
	if row.AvgRatio < 1 {
		t.Errorf("avg |Vmax|/|I_RAF| = %v < 1", row.AvgRatio)
	}
}

func TestRealizationSweep(t *testing.T) {
	g := testGraph(t)
	pairs := samplePairsForTest(t, g, 1)
	cfg := testConfig(t, g, pairs)
	pts, err := RealizationSweep(context.Background(), cfg, []int64{200, 1000, 5000})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	// Saturation shape: more realizations should not hurt much.
	if pts[2].F+0.05 < pts[0].F {
		t.Errorf("f decreased substantially along the sweep: %+v", pts)
	}
	for _, p := range pts {
		if p.F < 0 || p.F > 1 {
			t.Errorf("f out of range: %+v", p)
		}
	}
}

func TestRealizationSweepValidation(t *testing.T) {
	g := testGraph(t)
	cfg := testConfig(t, g, nil)
	if _, err := RealizationSweep(context.Background(), cfg, []int64{100}); !errors.Is(err, ErrNoPairs) {
		t.Errorf("no pairs err = %v", err)
	}
	cfg2 := testConfig(t, g, samplePairsForTest(t, g, 1))
	if _, err := RealizationSweep(context.Background(), cfg2, nil); err == nil {
		t.Error("empty grid accepted")
	}
}

func TestRenderers(t *testing.T) {
	stats := []gen.Stats{{Nodes: 10, Edges: 20, EdgesPerNode: 2}}
	tb := RenderTable1([]string{"Wiki"}, stats)
	var sb strings.Builder
	if err := tb.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Wiki") {
		t.Error("Table I render missing dataset name")
	}

	fig3 := RenderFig3("Wiki", []Fig3Row{{Alpha: 0.1, Pmax: 0.05, RAF: 0.04, HD: 0.01, SP: 0.02, Pairs: 3}})
	sb.Reset()
	if err := fig3.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Fig. 3") {
		t.Error("Fig. 3 title missing")
	}

	growth := &GrowthResult{Baseline: "SP", Bins: []GrowthBin{{XCenter: 0.2, SizeRatio: 2, Count: 1}}}
	sb.Reset()
	if err := RenderGrowth("HepTh", growth).WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Fig. 5") {
		t.Error("SP growth should render as Fig. 5")
	}
	growth.Baseline = "HD"
	sb.Reset()
	if err := RenderGrowth("HepTh", growth).WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Fig. 4") {
		t.Error("HD growth should render as Fig. 4")
	}

	sb.Reset()
	if err := RenderTable2([]string{"Wiki"}, []*VmaxRow{{AvgVmax: 10, AvgRAF: 4, AvgRatio: 2.5, PairsUsed: 7}}).WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Table II") {
		t.Error("Table II title missing")
	}

	sb.Reset()
	if err := RenderFig6("Wiki", []SweepPoint{{L: 100, F: 0.01, Size: 5}}).WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Fig. 6") {
		t.Error("Fig. 6 title missing")
	}

	sb.Reset()
	if err := RenderPairs("Wiki", []Pair{{S: 1, T: 2, Pmax: 0.5}}).WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "pmax") {
		t.Error("pairs render missing header")
	}

	sb.Reset()
	refine := &RefineResult{EpsCoarse: 0.3, EpsTight: 0.1, Pairs: 3,
		ColdDraws: 1000, CoarseDraws: 400, RefineDraws: 600, ReusedDraws: 400, SavedFrac: 0.4, Identical: true}
	if err := RenderPmaxRefine("Wiki", refine).WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "refinement") {
		t.Error("refinement render missing title")
	}
}

func TestExperimentsCancellation(t *testing.T) {
	g := testGraph(t)
	pairs := samplePairsForTest(t, g, 1)
	cfg := testConfig(t, g, pairs)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := BasicExperiment(ctx, cfg, []float64{0.1}); !errors.Is(err, context.Canceled) {
		t.Errorf("BasicExperiment err = %v", err)
	}
	if _, err := CompareGrowth(ctx, cfg, baselines.HighDegree{}); !errors.Is(err, context.Canceled) {
		t.Errorf("CompareGrowth err = %v", err)
	}
	if _, err := VmaxExperiment(ctx, cfg); !errors.Is(err, context.Canceled) {
		t.Errorf("VmaxExperiment err = %v", err)
	}
	if _, err := RealizationSweep(ctx, cfg, []int64{100}); !errors.Is(err, context.Canceled) {
		t.Errorf("RealizationSweep err = %v", err)
	}
}

// TestBasicExperimentThroughServer routes the multi-pair experiment
// through the serving layer: results are produced under an
// eviction-inducing pool budget, identical to the same server config
// without a budget, and the server's ledger shows the traffic.
func TestBasicExperimentThroughServer(t *testing.T) {
	g := testGraph(t)
	pairs := samplePairsForTest(t, g, 4)
	alphas := []float64{0.2, 0.3}

	run := func(maxBytes int64) ([]Fig3Row, *server.Server) {
		cfg := testConfig(t, g, pairs)
		cfg.Server = server.New(g, cfg.Weights, server.Config{
			Seed: cfg.Seed, Workers: cfg.Workers, MaxPoolBytes: maxBytes, Shards: 4,
		})
		rows, err := BasicExperiment(context.Background(), cfg, alphas)
		if err != nil {
			t.Fatal(err)
		}
		return rows, cfg.Server
	}

	free, freeSv := run(0)
	budgeted, sv := run(96 << 10)
	for i := range free {
		if free[i] != budgeted[i] {
			t.Errorf("alpha %v: rows diverged under eviction:\n got %+v\nwant %+v",
				free[i].Alpha, budgeted[i], free[i])
		}
	}
	st := sv.Stats()
	if st.ByKind[server.KindAcquire].Hits+st.ByKind[server.KindAcquire].Misses == 0 {
		t.Error("experiment did not route through the server")
	}
	if st.SessionsEvicted == 0 {
		t.Errorf("no eviction under a 96KiB budget: %+v", st)
	}
	if st.BytesHeld > 96<<10 {
		t.Errorf("BytesHeld = %d exceeds budget", st.BytesHeld)
	}
	if got := freeSv.Stats().SessionsLive; got != len(pairs) {
		t.Errorf("unbudgeted server live sessions = %d, want %d", got, len(pairs))
	}
}

func TestWarmRestart(t *testing.T) {
	g := testGraph(t)
	pairs := samplePairsForTest(t, g, 3)
	cfg := testConfig(t, g, pairs)
	res, err := WarmRestart(context.Background(), cfg, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Identical {
		t.Fatal("warm answers diverged from cold answers")
	}
	if res.SpillLoads == 0 || res.DrawsSaved == 0 || res.SpillBytes == 0 {
		t.Fatalf("warm run did not load from disk: %+v", res)
	}
	if res.Pairs != len(pairs) {
		t.Fatalf("Pairs = %d, want %d", res.Pairs, len(pairs))
	}
	if _, err := WarmRestart(context.Background(), Config{Graph: g, Weights: cfg.Weights}, t.TempDir()); err == nil {
		t.Fatal("no pairs accepted")
	}
}

func TestPmaxRefinement(t *testing.T) {
	g := testGraph(t)
	pairs := samplePairsForTest(t, g, 3)
	cfg := testConfig(t, g, pairs)
	res, err := PmaxRefinement(context.Background(), cfg, 0.3, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pairs == 0 {
		t.Fatal("no pairs used")
	}
	if !res.Identical {
		t.Error("refined estimates diverged from cold estimates")
	}
	if res.RefineDraws >= res.ColdDraws {
		t.Errorf("refine sampled %d draws vs cold %d — coarse draws not reused", res.RefineDraws, res.ColdDraws)
	}
	if res.ReusedDraws == 0 {
		t.Error("no reused draws ledgered")
	}
	if res.SavedFrac <= 0 || res.SavedFrac >= 1 {
		t.Errorf("SavedFrac = %v, want in (0,1)", res.SavedFrac)
	}
	// Parameter validation.
	if _, err := PmaxRefinement(context.Background(), cfg, 0.1, 0.3); err == nil {
		t.Error("inverted eps spread accepted")
	}
	empty := cfg
	empty.Pairs = nil
	if _, err := PmaxRefinement(context.Background(), empty, 0.3, 0.1); !errors.Is(err, ErrNoPairs) {
		t.Errorf("no pairs: err = %v", err)
	}
}

func TestMutationChurn(t *testing.T) {
	// A larger, sparser graph than testGraph: repair only saves draws
	// when random delta endpoints are rare in the pools' touch sets,
	// which needs many more nodes than a chunk's walks can visit.
	g, err := gen.ErdosRenyi(3000, 4500, rand.New(rand.NewSource(17)))
	if err != nil {
		t.Fatal(err)
	}
	pairs := samplePairsForTest(t, g, 3)
	cfg := testConfig(t, g, pairs)
	res, err := MutationChurn(context.Background(), cfg, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Identical {
		t.Fatal("repaired answers diverged from a cold server on the final graph")
	}
	if res.Pairs != len(pairs) || res.Epochs != 3 {
		t.Fatalf("shape: %+v", res)
	}
	// Deltas avoid the tested pairs' own edges, so every pair survives
	// every epoch.
	if res.PairsDropped != 0 || res.PairsMigrated != 3*len(pairs) {
		t.Fatalf("migration ledger: %+v", res)
	}
	// Sparse deltas must leave most draws adopted: repair pays strictly
	// less than discard.
	if res.AdoptedDraws == 0 || res.RepairDraws >= res.DiscardDraws {
		t.Fatalf("repair saved nothing: %+v", res)
	}
	if _, err := MutationChurn(context.Background(), Config{Graph: g, Weights: cfg.Weights}, 1, 1); err == nil {
		t.Fatal("no pairs accepted")
	}
}

func TestTopKRanking(t *testing.T) {
	g := testGraph(t)
	pairs := samplePairsForTest(t, g, 8)
	cfg := testConfig(t, g, pairs)
	cfg.EvalTrials = 2048
	res, err := TopKRanking(context.Background(), cfg, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Identical {
		t.Error("exhaustive batch diverged from independent SolveMax queries")
	}
	if res.ScheduledDraws >= res.ExhaustiveDraws {
		t.Errorf("scheduled run spent %d draws, exhaustive %d — no saving",
			res.ScheduledDraws, res.ExhaustiveDraws)
	}
	if res.DrawRatio <= 1 {
		t.Errorf("draw ratio %v, want > 1", res.DrawRatio)
	}
	if res.PrecisionAtK < 0 || res.PrecisionAtK > 1 {
		t.Errorf("precision@k = %v", res.PrecisionAtK)
	}
	if res.Candidates == 0 || res.K != 3 || res.Budget != 3 {
		t.Errorf("report shape: %+v", res)
	}
	if tbl := RenderTopK("test", res); tbl == nil {
		t.Error("nil table")
	}
	// Validation.
	if _, err := TopKRanking(context.Background(), cfg, 0, 3); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := TopKRanking(context.Background(), Config{Graph: g, Weights: cfg.Weights}, 3, 3); !errors.Is(err, ErrNoPairs) {
		t.Errorf("no pairs err = %v", err)
	}
}
