package eval

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/ltm"
	"repro/internal/rng"
	"repro/internal/tablewriter"
)

// RefineResult summarizes the p_max refinement experiment: for each pair,
// a cold Algorithm 2 estimate at a tight ε₀ versus a staged session that
// first estimates at a coarse ε₀ and then refines — the staged path must
// reach the identical estimate while its refinement step resamples only
// the draws the coarse pass had not already paid for.
type RefineResult struct {
	// EpsCoarse and EpsTight are the two accuracies of the staged path.
	EpsCoarse, EpsTight float64
	// Pairs contributed; Skipped were unreachable (p_max ≈ 0) or failed
	// to build.
	Pairs   int
	Skipped int
	// ColdDraws totals the draws the cold tight estimates sampled;
	// CoarseDraws the staged sessions' coarse passes; RefineDraws the
	// net-new draws their refinement steps added. ReusedDraws totals the
	// ledgered draws the refinements consumed without resampling, and
	// SavedFrac is 1 − RefineDraws/ColdDraws — the fraction of the tight
	// estimate's sampling bill the coarse pass had pre-paid.
	ColdDraws   int64
	CoarseDraws int64
	RefineDraws int64
	ReusedDraws int64
	SavedFrac   float64
	// Identical reports that every pair's refined estimate — value and
	// stopping point — equalled its cold counterpart.
	Identical bool
}

// PmaxRefinement measures what the resumable estimator buys: for every
// pair it runs a cold tight-ε₀ estimate on one session and a coarse →
// tight staged sequence on a second session with the same seed, then
// compares estimates (must be identical: the stopping point is a pure
// function of (seed, ε₀, N)) and draw bills. cfg.MaxPmaxDraws caps each
// estimate; cfg.Server is ignored — the experiment owns its sessions so
// the ledgers are cleanly attributable.
func PmaxRefinement(ctx context.Context, cfg Config, epsCoarse, epsTight float64) (*RefineResult, error) {
	c := cfg.withDefaults()
	if len(c.Pairs) == 0 {
		return nil, fmt.Errorf("%w: no pairs", ErrNoPairs)
	}
	if !(epsCoarse > epsTight && epsTight > 0 && epsCoarse < 1) {
		return nil, fmt.Errorf("eval: refinement needs 0 < epsTight < epsCoarse < 1, got %v, %v", epsTight, epsCoarse)
	}
	res := &RefineResult{EpsCoarse: epsCoarse, EpsTight: epsTight, Identical: true}
	for pi, pair := range c.Pairs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		in, err := ltm.NewInstance(c.Graph, c.Weights, pair.S, pair.T)
		if err != nil {
			res.Skipped++
			continue
		}
		seed := rng.Derive(c.Seed, uint64(pi))
		cold, err := core.NewSession(in, seed, c.Workers).EstimatePmax(ctx, epsTight, c.N, c.MaxPmaxDraws)
		if err != nil {
			if errors.Is(err, core.ErrTargetUnreachable) {
				res.Skipped++
				continue
			}
			return nil, fmt.Errorf("eval: cold p_max on pair (%d,%d): %w", pair.S, pair.T, err)
		}
		staged := core.NewSession(in, seed, c.Workers)
		coarse, err := staged.EstimatePmax(ctx, epsCoarse, c.N, c.MaxPmaxDraws)
		if err != nil {
			return nil, fmt.Errorf("eval: coarse p_max on pair (%d,%d): %w", pair.S, pair.T, err)
		}
		refined, err := staged.EstimatePmax(ctx, epsTight, c.N, c.MaxPmaxDraws)
		if err != nil {
			return nil, fmt.Errorf("eval: refined p_max on pair (%d,%d): %w", pair.S, pair.T, err)
		}
		res.Pairs++
		res.ColdDraws += cold.Sampled
		res.CoarseDraws += coarse.Sampled
		res.RefineDraws += refined.Sampled
		res.ReusedDraws += refined.Reused
		if refined.Estimate != cold.Estimate || refined.Draws != cold.Draws || refined.Truncated != cold.Truncated {
			res.Identical = false
		}
	}
	if res.Pairs == 0 {
		return nil, fmt.Errorf("%w: all pairs skipped", ErrNoPairs)
	}
	if res.ColdDraws > 0 {
		res.SavedFrac = 1 - float64(res.RefineDraws)/float64(res.ColdDraws)
	}
	return res, nil
}

// RenderPmaxRefine renders the refinement experiment for one dataset.
func RenderPmaxRefine(dataset string, res *RefineResult) *tablewriter.Table {
	t := tablewriter.New(
		fmt.Sprintf("p_max refinement (%s): cold eps0=%.2f vs staged %.2f → %.2f",
			dataset, res.EpsTight, res.EpsCoarse, res.EpsTight),
		"pairs", "cold draws", "coarse draws", "refine draws", "reused", "saved frac", "identical")
	t.AddRow(res.Pairs, res.ColdDraws, res.CoarseDraws, res.RefineDraws,
		res.ReusedDraws, res.SavedFrac, res.Identical)
	return t
}
