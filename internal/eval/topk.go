package eval

import (
	"context"
	"fmt"

	"repro/internal/graph"
	"repro/internal/server"
	"repro/internal/tablewriter"
)

// TopKReport summarizes the batched ranking experiment: one exhaustive
// TopK run (every candidate at full effort — byte-identical, by
// construction, to independent SolveMax calls) against a scheduled run
// whose draw budget is a quarter of the exhaustive bill. The scheduled
// run must find (nearly) the same winners for a fraction of the draws.
type TopKReport struct {
	Source     graph.Node
	Candidates int
	K          int
	Budget     int
	// Effort is the full per-candidate pool size L.
	Effort int64
	// ExhaustiveDraws / ScheduledDraws are the measured pool growth each
	// run caused; DrawRatio is their quotient — the batching win.
	ExhaustiveDraws int64
	ScheduledDraws  int64
	DrawRatio       float64
	// ScheduledRounds is the successive-halving depth of the budgeted
	// run; Truncated reports its winners stopped below full effort.
	ScheduledRounds int
	Truncated       bool
	// PrecisionAtK is |scheduled winners ∩ exhaustive winners| / k —
	// the ranking quality the cheaper schedule retained.
	PrecisionAtK float64
	// Identical reports that the exhaustive batch returned byte-identical
	// scores and invitation sets to an explicit per-target SolveMax loop
	// on a third fresh server.
	Identical bool
	// Frozen counts candidates the scheduled run stopped early (the
	// sublinearity at work); Errored counts candidates that failed to
	// score at all (unreachable or adjacent targets).
	Frozen  int
	Errored int
}

// topKTargets collects the distinct T endpoints of cfg.Pairs as the
// candidate list for source s, skipping s itself.
func topKTargets(pairs []Pair, s graph.Node) []graph.Node {
	seen := make(map[graph.Node]bool, len(pairs))
	targets := make([]graph.Node, 0, len(pairs))
	for _, p := range pairs {
		if p.T == s || seen[p.T] {
			continue
		}
		seen[p.T] = true
		targets = append(targets, p.T)
	}
	return targets
}

// TopKRanking measures what the scheduled batched ranking buys: the
// source is cfg.Pairs[0].S and the candidates are the distinct targets
// of cfg.Pairs. Three fresh servers share the seed: one serves the batch
// exhaustively (MaxDraws = 0), one serves it under a quarter of the
// exhaustive draw bill, and one answers an explicit per-target SolveMax
// loop to verify the exhaustive batch is byte-identical to k independent
// queries. cfg.Server is ignored — the experiment owns its servers so
// the draw ledgers are cleanly attributable. cfg.EvalTrials sets the
// full per-candidate effort L.
func TopKRanking(ctx context.Context, cfg Config, k, budget int) (*TopKReport, error) {
	c := cfg.withDefaults()
	if len(c.Pairs) == 0 {
		return nil, fmt.Errorf("%w: no pairs", ErrNoPairs)
	}
	if k <= 0 || budget <= 0 {
		return nil, fmt.Errorf("eval: topk needs positive k and budget, got %d, %d", k, budget)
	}
	s := c.Pairs[0].S
	targets := topKTargets(c.Pairs, s)
	if len(targets) == 0 {
		return nil, fmt.Errorf("%w: no distinct targets", ErrNoPairs)
	}
	newServer := func() *server.Server {
		return server.New(c.Graph, c.Weights, server.Config{Seed: c.Seed, Workers: c.Workers, Obs: c.Obs})
	}
	q := server.TopKQuery{
		S: s, Targets: targets, K: k, Budget: budget, Realizations: c.EvalTrials,
	}
	full, err := newServer().TopK(ctx, q)
	if err != nil {
		return nil, fmt.Errorf("eval: exhaustive topk: %w", err)
	}
	sq := q
	sq.MaxDraws = full.ExhaustiveDraws / 4
	sched, err := newServer().TopK(ctx, sq)
	if err != nil {
		return nil, fmt.Errorf("eval: scheduled topk: %w", err)
	}
	res := &TopKReport{
		Source: s, Candidates: len(targets), K: k, Budget: budget,
		Effort:          c.EvalTrials,
		ExhaustiveDraws: full.DrawsSpent,
		ScheduledDraws:  sched.DrawsSpent,
		ScheduledRounds: sched.Rounds,
		Truncated:       sched.Truncated,
		Identical:       true,
	}
	if res.ScheduledDraws > 0 {
		res.DrawRatio = float64(res.ExhaustiveDraws) / float64(res.ScheduledDraws)
	}
	for _, cand := range sched.Candidates {
		if cand.Frozen {
			res.Frozen++
		}
		if cand.Err != "" {
			res.Errored++
		}
	}
	// Precision@k of the budgeted ranking against the exhaustive one.
	want := make(map[int]bool, k)
	for _, wi := range full.Winners() {
		want[wi] = true
	}
	hits := 0
	for _, wi := range sched.Winners() {
		if want[wi] {
			hits++
		}
	}
	if n := len(full.Winners()); n > 0 {
		res.PrecisionAtK = float64(hits) / float64(n)
	}
	// Byte-identity: the exhaustive batch must equal an explicit loop of
	// independent SolveMax queries on a fresh server with the same seed.
	loop := newServer()
	for i, t := range targets {
		cand := full.Candidates[i]
		mres, f, err := loop.SolveMax(ctx, s, t, budget, c.EvalTrials)
		if err != nil {
			if cand.Err == "" {
				res.Identical = false
			}
			continue
		}
		if cand.Err != "" || cand.Score != f || cand.TrainF != mres.CoveredFraction ||
			cand.Invited == nil || cand.Invited.Len() != mres.Invited.Len() ||
			!cand.Invited.ContainsAll(mres.Invited) {
			res.Identical = false
		}
	}
	return res, nil
}

// RenderTopK renders the batched ranking experiment for one dataset.
func RenderTopK(dataset string, res *TopKReport) *tablewriter.Table {
	t := tablewriter.New(
		fmt.Sprintf("top-k ranking (%s): scheduled 1/4-budget batch vs exhaustive, n=%d k=%d b=%d L=%d",
			dataset, res.Candidates, res.K, res.Budget, res.Effort),
		"exhaustive draws", "scheduled draws", "ratio", "rounds", "frozen", "precision@k", "identical", "truncated")
	t.AddRow(res.ExhaustiveDraws, res.ScheduledDraws, res.DrawRatio,
		res.ScheduledRounds, res.Frozen, res.PrecisionAtK, res.Identical, res.Truncated)
	return t
}
