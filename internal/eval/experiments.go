package eval

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/ltm"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/server"
	"repro/internal/weights"
)

// Config parameterizes an experiment run on one dataset.
type Config struct {
	// Graph and Weights define the network; Pairs are the evaluated
	// (s,t) instances (from SamplePairs).
	Graph   *graph.Graph
	Weights weights.Scheme
	Pairs   []Pair

	// Alpha is the requirement ratio used where a single α is needed
	// (Figs. 4–6 use the Sec. IV-A setting; Table II uses α = 0.1).
	Alpha float64
	// Eps and N are the accuracy/success-probability controls
	// (paper: ε = 0.01, N = 100000).
	Eps float64
	N   float64

	// MaxRealizations caps RAF's pool (the practical regime of
	// Sec. IV-E); EvalTrials is the Monte-Carlo budget for measuring the
	// acceptance probability of a produced invitation set.
	MaxRealizations int64
	MaxPmaxDraws    int64
	EvalTrials      int64

	Seed    int64
	Workers int

	// Server, when set, routes every pair's sessions through the serving
	// layer: pools are cached, shared with query traffic, and evicted
	// under the server's memory budget (per-pair seeds then derive from
	// the server's (seed, s, t) streams, so results are reproducible
	// across runs and eviction schedules but differ from the
	// sessions-per-run path below). When nil, each experiment owns its
	// pair sessions for the duration of the run.
	Server *server.Server

	// Obs, when set, instruments the servers the experiments construct
	// themselves (warm restart, churn, topk comparisons) with the same
	// observability bundle the caller gave its own Server — so afexp's
	// -metrics-addr surface covers experiment-internal traffic too.
	// Instrumentation never changes a result.
	Obs *obs.Obs
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Alpha <= 0 {
		out.Alpha = 0.1
	}
	if out.Eps <= 0 {
		out.Eps = 0.01
	}
	if out.N <= 2 {
		out.N = 100000
	}
	if out.MaxRealizations <= 0 {
		out.MaxRealizations = 100000
	}
	if out.MaxPmaxDraws <= 0 {
		out.MaxPmaxDraws = 500000
	}
	if out.EvalTrials <= 0 {
		out.EvalTrials = 20000
	}
	return out
}

func (c *Config) rafConfig(alpha float64) core.Config {
	return core.Config{
		Alpha:           alpha,
		Eps:             c.Eps,
		N:               c.N,
		MaxRealizations: c.MaxRealizations,
		MaxPmaxDraws:    c.MaxPmaxDraws,
	}
}

// pairSession bundles the per-pair solve and measurement state: a core
// session (shared realization pool, cached V_max and p_max across solves)
// plus an evaluation-pool session over an independent stream family, so
// every f measurement for this pair — across α values, baselines and
// growth steps — reuses one pool of EvalTrials draws and its coverage
// index instead of resampling.
type pairSession struct {
	in     *ltm.Instance
	sess   *core.Session
	ev     *engine.Session
	trials int64
	done   func() // settles server accounting; nil off the server path
}

func (c *Config) newPairSession(pi int, pair Pair) (*pairSession, error) {
	if c.Server != nil {
		h, err := c.Server.Pair(pair.S, pair.T)
		if err != nil {
			return nil, err
		}
		return &pairSession{
			in:     h.Instance(),
			sess:   h.Core(),
			ev:     h.Eval(),
			trials: c.EvalTrials,
			done:   h.Done,
		}, nil
	}
	in, err := ltm.NewInstance(c.Graph, c.Weights, pair.S, pair.T)
	if err != nil {
		return nil, err
	}
	seed := rng.Derive(c.Seed, uint64(pi))
	sess := core.NewSession(in, seed, c.Workers)
	return &pairSession{
		in:     in,
		sess:   sess,
		ev:     sess.Engine().NewEvalSession(seed, c.Workers),
		trials: c.EvalTrials,
	}, nil
}

// close settles the pair's accounting with the serving layer (letting it
// evict cold pools); a no-op for run-owned sessions.
func (ps *pairSession) close() {
	if ps.done != nil {
		ps.done()
	}
}

// measureF estimates f(invited) against the pair's cached evaluation pool.
func (ps *pairSession) measureF(ctx context.Context, invited *graph.NodeSet) (float64, error) {
	return ps.ev.EstimateF(ctx, invited, ps.trials)
}

// measureFMany estimates f for several invitation sets in one batched
// coverage query against the pair's evaluation pool: the pool's postings
// are traversed once for the whole batch instead of once per set.
func (ps *pairSession) measureFMany(ctx context.Context, invited []*graph.NodeSet) ([]float64, error) {
	return ps.ev.EstimateFMany(ctx, invited, ps.trials)
}

// Fig3Row is one x-position of the basic experiment: average acceptance
// probabilities at a fixed α, with the HD and SP sets sized to |I_RAF|.
type Fig3Row struct {
	Alpha float64
	Pmax  float64 // average p_max across pairs
	RAF   float64
	HD    float64
	SP    float64
	// AvgSize is the average |I_RAF| at this α.
	AvgSize float64
	// Pairs is the number of pairs that contributed (RAF failures are
	// skipped and counted in Skipped).
	Pairs   int
	Skipped int
}

// BasicExperiment reproduces Fig. 3: for each pair and each α in alphas,
// run RAF, size HD and SP to |I_RAF|, and average the measured acceptance
// probabilities per α. Pairs are the outer loop so that the whole α-sweep
// for one pair runs through a single session: the realization pool is
// sampled once and grown as needed, V_max and p_max are computed once,
// baseline rankings are ranked once, and every f measurement shares one
// evaluation pool.
func BasicExperiment(ctx context.Context, cfg Config, alphas []float64) ([]Fig3Row, error) {
	c := cfg.withDefaults()
	if len(alphas) == 0 {
		return nil, fmt.Errorf("eval: no alphas given")
	}
	hd, sp := baselines.HighDegree{}, baselines.ShortestPath{}
	rows := make([]Fig3Row, len(alphas))
	sums := make([][5]float64, len(alphas)) // per α: pmax, raf, hd, sp, size
	for ai, alpha := range alphas {
		rows[ai].Alpha = alpha
	}
	for pi, pair := range c.Pairs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ps, err := c.newPairSession(pi, pair)
		if err != nil {
			for ai := range rows {
				rows[ai].Skipped++
			}
			continue
		}
		err = func() error {
			defer ps.close()
			hdOrder, spOrder := hd.Rank(ps.in), sp.Rank(ps.in)
			for ai, alpha := range alphas {
				res, err := ps.sess.RAF(ctx, c.rafConfig(alpha))
				if err != nil {
					if errors.Is(err, core.ErrTargetUnreachable) {
						rows[ai].Skipped++
						continue
					}
					return fmt.Errorf("eval: RAF on pair (%d,%d): %w", pair.S, pair.T, err)
				}
				k := res.Invited.Len()
				// One batched coverage query measures RAF and both size-
				// matched baselines in a single postings traversal.
				fs, err := ps.measureFMany(ctx, []*graph.NodeSet{
					res.Invited,
					baselines.PrefixSet(c.Graph.NumNodes(), hdOrder, k),
					baselines.PrefixSet(c.Graph.NumNodes(), spOrder, k),
				})
				if err != nil {
					return err
				}
				rows[ai].Pairs++
				sums[ai][0] += pair.Pmax
				sums[ai][1] += fs[0]
				sums[ai][2] += fs[1]
				sums[ai][3] += fs[2]
				sums[ai][4] += float64(k)
			}
			return nil
		}()
		if err != nil {
			return nil, err
		}
	}
	for ai := range rows {
		if rows[ai].Pairs > 0 {
			div := float64(rows[ai].Pairs)
			rows[ai].Pmax = sums[ai][0] / div
			rows[ai].RAF = sums[ai][1] / div
			rows[ai].HD = sums[ai][2] / div
			rows[ai].SP = sums[ai][3] / div
			rows[ai].AvgSize = sums[ai][4] / div
		}
	}
	return rows, nil
}

// GrowthBin is one x-bin of Figs. 4–5: among growth points whose
// acceptance-probability ratio f(I_B)/f(I_RAF) falls in the bin, the
// average size ratio |I_B|/|I_RAF|.
type GrowthBin struct {
	// XCenter is the bin's nominal x (0.2, 0.4, 0.6, 0.8, 1.0).
	XCenter float64
	// SizeRatio is the average |I_B|/|I_RAF| in the bin.
	SizeRatio float64
	// Count is the number of contributing growth points.
	Count int
}

// GrowthResult is the outcome of CompareGrowth on one dataset.
type GrowthResult struct {
	Baseline string
	Bins     []GrowthBin
	// PairsUsed / PairsSkipped account for RAF failures.
	PairsUsed    int
	PairsSkipped int
}

// CompareGrowth reproduces Fig. 4 (baseline HD) and Fig. 5 (baseline SP):
// for each pair, run RAF, then grow the baseline's invitation set until it
// matches f(I_RAF) (or candidates run out), recording
// (f(I_B,k)/f(I_RAF), k/|I_RAF|) points, pooled over pairs into five bins.
func CompareGrowth(ctx context.Context, cfg Config, ranker baselines.Ranker) (*GrowthResult, error) {
	c := cfg.withDefaults()
	res := &GrowthResult{Baseline: ranker.Name()}
	type point struct{ x, y float64 }
	var points []point
	for pi, pair := range c.Pairs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ps, err := c.newPairSession(pi, pair)
		if err != nil {
			res.PairsSkipped++
			continue
		}
		err = func() error {
			defer ps.close()
			raf, err := ps.sess.RAF(ctx, c.rafConfig(c.Alpha))
			if err != nil {
				if errors.Is(err, core.ErrTargetUnreachable) {
					res.PairsSkipped++
					return nil
				}
				return fmt.Errorf("eval: RAF on pair (%d,%d): %w", pair.S, pair.T, err)
			}
			fRAF, err := ps.measureF(ctx, raf.Invited)
			if err != nil {
				return err
			}
			if fRAF <= 0 {
				res.PairsSkipped++
				return nil
			}
			kRAF := raf.Invited.Len()
			order := ranker.Rank(ps.in)
			// Geometric growth schedule: fine-grained near |I_RAF|, coarse
			// beyond, so breakpoints (Sec. IV-B) remain visible at bounded
			// cost. Every step's measurement is a coverage query against the
			// pair's one cached evaluation pool.
			for k := maxInt(1, kRAF/4); k <= len(order); {
				invited := baselines.PrefixSet(c.Graph.NumNodes(), order, k)
				fB, err := ps.measureF(ctx, invited)
				if err != nil {
					return err
				}
				points = append(points, point{x: fB / fRAF, y: float64(k) / float64(kRAF)})
				if fB >= fRAF {
					break
				}
				next := int(math.Ceil(float64(k) * 1.35))
				if next <= k {
					next = k + 1
				}
				k = next
				if k > len(order) && len(order) > 0 && points[len(points)-1].x < 1 {
					// Final point with the full candidate set.
					k = len(order)
					fAll, err := ps.measureF(ctx, baselines.PrefixSet(c.Graph.NumNodes(), order, k))
					if err != nil {
						return err
					}
					points = append(points, point{x: fAll / fRAF, y: float64(k) / float64(kRAF)})
					break
				}
			}
			res.PairsUsed++
			return nil
		}()
		if err != nil {
			return nil, err
		}
	}
	if res.PairsUsed == 0 {
		return nil, fmt.Errorf("%w: all pairs skipped", ErrNoPairs)
	}
	// Five bins centered at 0.2, 0.4, 0.6, 0.8, 1.0 over x ∈ (0, 1+].
	centers := []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	res.Bins = make([]GrowthBin, len(centers))
	for i, x := range centers {
		res.Bins[i].XCenter = x
	}
	for _, p := range points {
		x := p.x
		if x > 1 {
			x = 1
		}
		idx := int(math.Ceil(x*5)) - 1
		if idx < 0 {
			idx = 0
		}
		if idx > 4 {
			idx = 4
		}
		res.Bins[idx].SizeRatio += p.y
		res.Bins[idx].Count++
	}
	for i := range res.Bins {
		if res.Bins[i].Count > 0 {
			res.Bins[i].SizeRatio /= float64(res.Bins[i].Count)
		}
	}
	return res, nil
}

// VmaxRow is Table II for one dataset: average |V_max|, |I_RAF| (α = 0.1)
// and their ratio.
type VmaxRow struct {
	AvgVmax      float64
	AvgRAF       float64
	AvgRatio     float64
	PairsUsed    int
	PairsSkipped int
}

// VmaxExperiment reproduces Table II.
func VmaxExperiment(ctx context.Context, cfg Config) (*VmaxRow, error) {
	c := cfg.withDefaults()
	row := &VmaxRow{}
	var sumVmax, sumRAF, sumRatio float64
	for pi, pair := range c.Pairs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ps, err := c.newPairSession(pi, pair)
		if err != nil {
			row.PairsSkipped++
			continue
		}
		err = func() error {
			defer ps.close()
			res, err := ps.sess.RAF(ctx, c.rafConfig(c.Alpha))
			if err != nil {
				if errors.Is(err, core.ErrTargetUnreachable) {
					row.PairsSkipped++
					return nil
				}
				return fmt.Errorf("eval: RAF on pair (%d,%d): %w", pair.S, pair.T, err)
			}
			vmSize := res.VmaxSize
			if vmSize == 0 {
				vm, err := ps.sess.Vmax()
				if err != nil {
					return err
				}
				vmSize = vm.Len()
			}
			k := res.Invited.Len()
			if k == 0 {
				row.PairsSkipped++
				return nil
			}
			row.PairsUsed++
			sumVmax += float64(vmSize)
			sumRAF += float64(k)
			sumRatio += float64(vmSize) / float64(k)
			return nil
		}()
		if err != nil {
			return nil, err
		}
	}
	if row.PairsUsed == 0 {
		return nil, fmt.Errorf("%w: all pairs skipped", ErrNoPairs)
	}
	div := float64(row.PairsUsed)
	row.AvgVmax = sumVmax / div
	row.AvgRAF = sumRAF / div
	row.AvgRatio = sumRatio / div
	return row, nil
}

// SweepPoint is one x-position of Fig. 6: the acceptance probability of
// the framework's output when only l realizations are used.
type SweepPoint struct {
	L int64
	F float64
	// Size is |I*| at this l.
	Size int
}

// RealizationSweep reproduces Fig. 6: fix β (from the equation system at
// cfg.Alpha) and sweep the number of realizations handed to Algorithm 3,
// measuring the resulting acceptance probability. The paper runs this on
// a single illustrative pair; the first pair of cfg.Pairs is used. The
// sweep shares one session, so each grid point's pool is the previous
// point's pool grown in place — every realization is sampled exactly once
// across the whole sweep.
func RealizationSweep(ctx context.Context, cfg Config, ls []int64) ([]SweepPoint, error) {
	c := cfg.withDefaults()
	if len(c.Pairs) == 0 {
		return nil, fmt.Errorf("%w: no pair provided", ErrNoPairs)
	}
	if len(ls) == 0 {
		return nil, fmt.Errorf("eval: empty realization grid")
	}
	ps, err := c.newPairSession(0, c.Pairs[0])
	if err != nil {
		return nil, fmt.Errorf("eval: pair (%d,%d): %w", c.Pairs[0].S, c.Pairs[0].T, err)
	}
	defer ps.close()
	vm, err := ps.sess.Vmax()
	if err != nil {
		return nil, err
	}
	dim := vm.Len()
	if dim == 0 {
		return nil, fmt.Errorf("%w: pair (%d,%d) unreachable", ErrNoPairs, c.Pairs[0].S, c.Pairs[0].T)
	}
	params, err := core.SolveEquationSystem(c.Alpha, c.Eps, float64(dim))
	if err != nil {
		return nil, err
	}
	sorted := append([]int64(nil), ls...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	// Solve every grid point first (each pool is the previous point's pool
	// grown in place), then measure all invitation sets in one batched
	// coverage query against the evaluation pool — the sweep table costs a
	// single postings traversal instead of one per grid point.
	out := make([]SweepPoint, 0, len(sorted))
	var sets []*graph.NodeSet
	var measured []int // out indexes awaiting a measurement
	for _, l := range sorted {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		invited, _, _, err := ps.sess.Framework(ctx, params.Beta, l)
		if err != nil {
			if errors.Is(err, core.ErrTargetUnreachable) {
				out = append(out, SweepPoint{L: l, F: 0, Size: 0})
				continue
			}
			return nil, err
		}
		measured = append(measured, len(out))
		out = append(out, SweepPoint{L: l, Size: invited.Len()})
		sets = append(sets, invited)
	}
	if len(sets) > 0 { // all-unreachable sweeps need no evaluation pool
		fs, err := ps.measureFMany(ctx, sets)
		if err != nil {
			return nil, err
		}
		for i, oi := range measured {
			out[oi].F = fs[i]
		}
	}
	return out, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
