package eval

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"repro/internal/graph"
	"repro/internal/proto"
	"repro/internal/proto/httpapi"
	"repro/internal/server"
)

// TransportParityResult summarizes the transport-parity experiment: the
// same query workload answered three ways — direct Dispatcher calls,
// the pipe's line protocol, and a live HTTP endpoint — with per-path
// wall-clock time and a byte-identity verdict over the reply streams.
type TransportParityResult struct {
	Queries int
	// Direct, Pipe and HTTP are the wall-clock times of the three runs
	// over the identical workload; the gaps are pure protocol overhead
	// (JSON decode for Pipe, plus loopback HTTP for HTTP).
	Direct time.Duration
	Pipe   time.Duration
	HTTP   time.Duration
	// Identical reports that all three reply streams were byte-identical
	// line for line; Mismatches counts the lines that were not.
	Identical  bool
	Mismatches int
}

// TransportParity proves answer-invariance across transports end to
// end: a mixed workload (pmax, solvemax, acceptance estimate, pmax
// refinement, one top-k batch, a final stats ledger) is built once as
// request lines, then served by three fresh servers with the same seed
// — one queried through the Dispatcher directly, one through
// DispatchLine (the pipe path), one through a live HTTP listener
// speaking NDJSON. Every answer is a pure function of (seed, s, t), so
// the three reply streams must match byte for byte; any divergence is
// a transport bug, not noise. cfg.Server is ignored: the experiment
// owns all three server lifetimes.
func TransportParity(ctx context.Context, cfg Config) (*TransportParityResult, error) {
	c := cfg.withDefaults()
	if len(c.Pairs) == 0 {
		return nil, fmt.Errorf("%w: no pairs", ErrNoPairs)
	}

	var reqs []proto.Request
	id := int64(0)
	add := func(r proto.Request) {
		id++
		r.ID = id
		reqs = append(reqs, r)
	}
	for _, p := range c.Pairs {
		add(proto.Request{Op: "pmax", S: p.S, T: p.T, Trials: c.MaxPmaxDraws})
		add(proto.Request{Op: "solvemax", S: p.S, T: p.T, Budget: 3, Realizations: c.MaxRealizations})
		add(proto.Request{Op: "pmaxest", S: p.S, T: p.T, Eps: 0.25, N: 50, Trials: c.MaxPmaxDraws})
	}
	// One batched ranking: the first pair's source ranks every target.
	targets := make([]graph.Node, 0, len(c.Pairs))
	for _, p := range c.Pairs {
		targets = append(targets, p.T)
	}
	add(proto.Request{Op: "topk", S: c.Pairs[0].S, Targets: targets, K: 2, Budget: 3, Realizations: 4096})
	// The stats ledger is part of the contract: three servers that saw
	// the identical sequence must agree on every counter.
	add(proto.Request{Op: "stats"})

	var lines [][]byte
	for _, r := range reqs {
		b, err := json.Marshal(r)
		if err != nil {
			return nil, err
		}
		lines = append(lines, b)
	}

	newServer := func() *server.Server {
		return server.New(c.Graph, c.Weights, server.Config{
			Seed: c.Seed, Workers: c.Workers, Obs: c.Obs,
		})
	}
	encodeAll := func(dispatch func(i int) proto.Response) ([]string, error) {
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		for i := range reqs {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if err := enc.Encode(dispatch(i)); err != nil {
				return nil, err
			}
		}
		return strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n"), nil
	}

	res := &TransportParityResult{Queries: len(reqs)}

	dDirect := proto.NewDispatcher(newServer())
	start := time.Now()
	direct, err := encodeAll(func(i int) proto.Response { return dDirect.Dispatch(ctx, reqs[i]) })
	if err != nil {
		return nil, err
	}
	res.Direct = time.Since(start)

	dPipe := proto.NewDispatcher(newServer())
	start = time.Now()
	pipe, err := encodeAll(func(i int) proto.Response { return dPipe.DispatchLine(ctx, lines[i]) })
	if err != nil {
		return nil, err
	}
	res.Pipe = time.Since(start)

	ts := httptest.NewServer(httpapi.New(proto.NewDispatcher(newServer())))
	defer ts.Close()
	body := append(bytes.Join(lines, []byte("\n")), '\n')
	start = time.Now()
	resp, err := http.Post(ts.URL, "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	replies, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	res.HTTP = time.Since(start)
	if rerr != nil {
		return nil, rerr
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("transport parity: HTTP batch status %d", resp.StatusCode)
	}
	httpLines := strings.Split(strings.TrimSuffix(string(replies), "\n"), "\n")

	if len(pipe) != len(direct) || len(httpLines) != len(direct) {
		return nil, fmt.Errorf("transport parity: reply counts diverged: direct %d, pipe %d, http %d",
			len(direct), len(pipe), len(httpLines))
	}
	for i := range direct {
		if pipe[i] != direct[i] || httpLines[i] != direct[i] {
			res.Mismatches++
		}
	}
	res.Identical = res.Mismatches == 0
	return res, nil
}
