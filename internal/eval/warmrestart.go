package eval

import (
	"context"
	"fmt"
	"time"

	"repro/internal/server"
)

// WarmRestartResult summarizes the warm-restart experiment: the same
// pool-bound workload served by a cold process (every pool sampled draw
// by draw) and by a restarted process that loaded the first one's
// snapshot flush from disk.
type WarmRestartResult struct {
	Pairs int
	// Cold and Warm are the wall-clock times of the two runs; Speedup is
	// Cold/Warm. The workload is pool-bound (SolveMax + Pmax), so the gap
	// is dominated by sampling avoided through snapshot loads.
	Cold    time.Duration
	Warm    time.Duration
	Speedup float64
	// SpillBytes is the size of the flushed state the warm run started
	// from; SpillLoads and DrawsSaved are its ledgered load activity.
	SpillBytes int64
	SpillLoads int64
	DrawsSaved int64
	// Identical reports that every warm answer was byte-identical to its
	// cold counterpart — the purity invariant across a restart.
	Identical bool
}

// WarmRestart measures what pool persistence buys across a restart: it
// serves a pool-bound workload (a SolveMax budget sweep plus a Pmax per
// pair) on a spill-enabled server, flushes every pool to dir (the
// graceful-shutdown path), then replays the identical workload on a
// fresh server warmed from dir — the restarted process. Answers must be
// byte-identical (Identical); the timing gap is the resampling the
// snapshots avoided. cfg.Server is ignored: the experiment owns both
// server lifetimes.
func WarmRestart(ctx context.Context, cfg Config, dir string) (*WarmRestartResult, error) {
	c := cfg.withDefaults()
	if len(c.Pairs) == 0 {
		return nil, fmt.Errorf("%w: no pairs", ErrNoPairs)
	}
	newServer := func() *server.Server {
		return server.New(c.Graph, c.Weights, server.Config{
			Seed: c.Seed, Workers: c.Workers, SpillDir: dir, Obs: c.Obs,
		})
	}
	workload := func(sv *server.Server) ([]string, time.Duration, error) {
		var out []string
		budgets := []int{1, 2, 5, 10}
		start := time.Now()
		for _, p := range c.Pairs {
			if err := ctx.Err(); err != nil {
				return nil, 0, err
			}
			results, fs, err := sv.SolveMaxBudgets(ctx, p.S, p.T, budgets, c.MaxRealizations)
			if err != nil {
				out = append(out, fmt.Sprintf("smax(%d,%d)=err", p.S, p.T))
			} else {
				for i, r := range results {
					out = append(out, fmt.Sprintf("smax(%d,%d,%d)=%v|%.12f|%.12f",
						p.S, p.T, budgets[i], r.Invited.Members(), r.CoveredFraction, fs[i]))
				}
			}
			pm, err := sv.Pmax(ctx, p.S, p.T, c.EvalTrials)
			out = append(out, fmt.Sprintf("pmax(%d,%d)=%.12f/%v", p.S, p.T, pm, err != nil))
		}
		return out, time.Since(start), nil
	}

	cold := newServer()
	coldAns, coldDur, err := workload(cold)
	if err != nil {
		return nil, err
	}
	if err := cold.SpillAll(); err != nil {
		return nil, fmt.Errorf("eval: spill flush: %w", err)
	}
	flushed := cold.Stats()

	warm := newServer()
	if _, err := warm.Warm(); err != nil {
		return nil, fmt.Errorf("eval: warming: %w", err)
	}
	warmAns, warmDur, err := workload(warm)
	if err != nil {
		return nil, err
	}
	warmStats := warm.Stats()

	res := &WarmRestartResult{
		Pairs:      len(c.Pairs),
		Cold:       coldDur,
		Warm:       warmDur,
		SpillBytes: flushed.SpillBytes,
		SpillLoads: warmStats.SpillLoads,
		DrawsSaved: warmStats.SpillDrawsSaved,
		Identical:  len(coldAns) == len(warmAns),
	}
	if warmDur > 0 {
		res.Speedup = float64(coldDur) / float64(warmDur)
	}
	for i := 0; res.Identical && i < len(coldAns); i++ {
		res.Identical = coldAns[i] == warmAns[i]
	}
	return res, nil
}
