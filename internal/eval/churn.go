package eval

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/server"
	"repro/internal/weights"
)

// ChurnResult summarizes the mutation-churn experiment: a server holding
// warm pools for every pair while the graph mutates epoch by epoch,
// migrating the pools across each delta by repair instead of discarding
// them.
type ChurnResult struct {
	Pairs  int
	Epochs int
	// PairsMigrated totals pair migrations across all epochs (each pair
	// migrates once per epoch it survives); PairsDropped counts pairs a
	// delta dissolved.
	PairsMigrated int
	PairsDropped  int
	// RepairDraws is what migration paid: the draws resampled because
	// their chunks touched a dirty node. AdoptedDraws is what it kept
	// verbatim. DiscardDraws is the bill a discard-and-resample strategy
	// pays for the same pools — every draw, damaged or not — so it is
	// exactly RepairDraws + AdoptedDraws, and SavedFraction is the share
	// of that bill repair avoided.
	RepairDraws   int64
	AdoptedDraws  int64
	DiscardDraws  int64
	SavedFraction float64
	// Identical reports that every final-epoch answer was byte-identical
	// to a server built cold on the final graph — repair is a latency
	// optimization, never a correctness event.
	Identical bool
}

// MutationChurn measures what delta-aware pool repair buys under graph
// churn: it warms a pool-bound workload (a Pmax and a refined p_max
// estimate per pair), then applies epochs sparse random deltas — each
// adding and removing edgesPerDelta edges — replaying the workload after
// every mutation. Live pools are migrated across each epoch by repair
// (server.ApplyDelta); the reported draw bill is compared against the
// discard strategy, which resamples every pool from scratch at each
// epoch. Final-epoch answers are checked byte-identical against a cold
// server on the final graph. cfg.Server is ignored: the experiment owns
// both server lifetimes. Deltas never touch a tested pair's own (s,t)
// edge, so no pair dissolves by construction.
//
// The saved fraction grows with graph size: a chunk's 2048 backward
// walks touch a bounded set of nodes, so the chance a random dirty node
// damages the chunk shrinks as the graph grows past what the walks can
// visit. Small laptop-scale analogs can legitimately report 0 saved
// (every chunk touches most of the graph — repair degenerates to
// discard, still byte-identical); the production regime is scale
// closer to 1.
func MutationChurn(ctx context.Context, cfg Config, epochs, edgesPerDelta int) (*ChurnResult, error) {
	c := cfg.withDefaults()
	if len(c.Pairs) == 0 {
		return nil, fmt.Errorf("%w: no pairs", ErrNoPairs)
	}
	if epochs <= 0 {
		epochs = 3
	}
	if edgesPerDelta <= 0 {
		edgesPerDelta = 2
	}
	tested := make(map[graph.Edge]bool, len(c.Pairs))
	for _, p := range c.Pairs {
		e := graph.Edge{U: p.S, V: p.T}
		if e.U > e.V {
			e.U, e.V = e.V, e.U
		}
		tested[e] = true
	}
	workload := func(sv *server.Server) ([]string, error) {
		var out []string
		for _, p := range c.Pairs {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			pm, err := sv.Pmax(ctx, p.S, p.T, c.EvalTrials)
			out = append(out, fmt.Sprintf("pmax(%d,%d)=%.12f/%v", p.S, p.T, pm, err != nil))
			est, err := sv.PmaxEstimate(ctx, p.S, p.T, 0.2, 50, c.MaxPmaxDraws)
			out = append(out, fmt.Sprintf("est(%d,%d)=%.12f|%d|%v/%v",
				p.S, p.T, est.Estimate, est.Draws, est.Truncated, err != nil))
		}
		return out, nil
	}

	sv := server.New(c.Graph, c.Weights, server.Config{Seed: c.Seed, Workers: c.Workers, Obs: c.Obs})
	if _, err := workload(sv); err != nil {
		return nil, err
	}

	res := &ChurnResult{Pairs: len(c.Pairs), Epochs: epochs}
	r := rng.DeriveRand(c.Seed, 0xC08B)
	scheme := c.Weights
	for ep := 0; ep < epochs; ep++ {
		g := sv.Graph()
		d := randomDelta(r, g, tested, edgesPerDelta)
		dres, err := sv.ApplyDelta(ctx, d, nil)
		if err != nil {
			return nil, fmt.Errorf("eval: delta at epoch %d: %w", ep+1, err)
		}
		res.PairsMigrated += dres.PairsMigrated
		res.PairsDropped += dres.PairsDropped
		// Mirror the server's scheme rebuild so the cold comparison server
		// below is constructed exactly like the head epoch.
		if scheme, err = weights.Rebuild(scheme, sv.Graph(), dres.Dirty, nil); err != nil {
			return nil, err
		}
		if _, err := workload(sv); err != nil {
			return nil, err
		}
	}
	warmAns, err := workload(sv)
	if err != nil {
		return nil, err
	}
	st := sv.Stats()
	res.RepairDraws = st.RepairDrawsResampled
	res.AdoptedDraws = st.RepairDrawsSaved
	res.DiscardDraws = res.RepairDraws + res.AdoptedDraws
	if res.DiscardDraws > 0 {
		res.SavedFraction = float64(res.AdoptedDraws) / float64(res.DiscardDraws)
	}

	cold := server.New(sv.Graph(), scheme, server.Config{Seed: c.Seed, Workers: c.Workers, Obs: c.Obs})
	coldAns, err := workload(cold)
	if err != nil {
		return nil, err
	}
	res.Identical = len(warmAns) == len(coldAns)
	for i := 0; res.Identical && i < len(warmAns); i++ {
		res.Identical = warmAns[i] == coldAns[i]
	}
	return res, nil
}

// randomDelta draws a sparse delta: k random absent edges to add and k
// random present edges to remove, never touching a tested pair's own
// (s,t) edge and never removing an edge whose loss would isolate an
// endpoint. Add and remove sets are disjoint by construction (adds come
// from non-edges, removes from edges).
func randomDelta(r *rand.Rand, g *graph.Graph, tested map[graph.Edge]bool, k int) *graph.Delta {
	n := g.NumNodes()
	d := &graph.Delta{}
	for attempts := 0; len(d.Add) < k && attempts < 50*k; attempts++ {
		e := graph.Edge{U: graph.Node(r.Intn(n)), V: graph.Node(r.Intn(n))}
		if e.U > e.V {
			e.U, e.V = e.V, e.U
		}
		if e.U == e.V || g.HasEdge(e.U, e.V) || tested[e] {
			continue
		}
		d.Add = append(d.Add, e)
	}
	// Sampling removals uniformly over edges would be degree-biased: an
	// edge endpoint is a hub with probability proportional to its degree,
	// and hubs sit in every chunk's touch set, turning every repair into
	// a full resample. Keep removals on the periphery, where real churn
	// (and the repair win) lives.
	edges := g.Edges()
	for attempts := 0; len(d.Remove) < k && attempts < 50*k && len(edges) > 0; attempts++ {
		e := edges[r.Intn(len(edges))]
		if du, dv := g.Degree(e.U), g.Degree(e.V); du < 2 || dv < 2 || du+dv > 8 {
			continue
		}
		d.Remove = append(d.Remove, e)
	}
	return d
}
