package tablewriter

import (
	"strings"
	"testing"
)

func TestWriteText(t *testing.T) {
	tb := New("Demo", "name", "value")
	tb.AddRow("alpha", 0.123456)
	tb.AddRow("a-very-long-name", 1234.5)
	var sb strings.Builder
	if err := tb.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "Demo\n") {
		t.Errorf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "a-very-long-name") || !strings.Contains(out, "0.12346") {
		t.Errorf("content missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("line count = %d:\n%s", len(lines), out)
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
}

func TestWriteCSVQuoting(t *testing.T) {
	tb := New("", "a", "b")
	tb.AddRow(`x,y`, `say "hi"`)
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n\"x,y\",\"say \"\"hi\"\"\"\n"
	if sb.String() != want {
		t.Errorf("CSV = %q, want %q", sb.String(), want)
	}
}

func TestFloatFormatting(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		0.03:    "0.03000",
		2.5:     "2.500",
		12345.6: "12345.6",
	}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}
