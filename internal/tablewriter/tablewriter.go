// Package tablewriter renders small result tables as aligned text and CSV
// for the experiment reports (Tables I–II and the figure series of the
// paper's evaluation).
package tablewriter

import (
	"fmt"
	"io"
	"strings"
)

// Table is an in-memory table with a header and string cells.
type Table struct {
	// Title is printed above the table when non-empty.
	Title  string
	header []string
	rows   [][]string
}

// New returns a table with the given column headers.
func New(title string, header ...string) *Table {
	return &Table{Title: title, header: header}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case float32:
			row[i] = formatFloat(float64(v))
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000 || v <= -1000:
		return fmt.Sprintf("%.1f", v)
	case v >= 1 || v <= -1:
		return fmt.Sprintf("%.3f", v)
	default:
		return fmt.Sprintf("%.5f", v)
	}
}

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if i < len(cells)-1 {
				sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, sb.String())
	if err != nil {
		return fmt.Errorf("tablewriter: %w", err)
	}
	return nil
}

// WriteCSV renders the table as RFC-4180-ish CSV (cells containing commas
// or quotes are quoted).
func (t *Table) WriteCSV(w io.Writer) error {
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				sb.WriteByte('"')
				sb.WriteString(strings.ReplaceAll(c, "\"", "\"\""))
				sb.WriteByte('"')
			} else {
				sb.WriteString(c)
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.header)
	for _, row := range t.rows {
		writeRow(row)
	}
	if _, err := io.WriteString(w, sb.String()); err != nil {
		return fmt.Errorf("tablewriter: %w", err)
	}
	return nil
}
