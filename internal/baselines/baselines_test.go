package baselines

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/ltm"
	"repro/internal/weights"
)

func buildInstance(t *testing.T, edges []graph.Edge, n int, s, tt graph.Node) *ltm.Instance {
	t.Helper()
	g := graph.FromEdges(n, edges)
	in, err := ltm.NewInstance(g, weights.NewDegree(g), s, tt)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// Fixture: s=0 - 1 - 2 - t=5, s - 3 - 4 - t, hub 6 adjacent to 1,2,3,4.
func fixture(t *testing.T) *ltm.Instance {
	edges := []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 5},
		{U: 0, V: 3}, {U: 3, V: 4}, {U: 4, V: 5},
		{U: 6, V: 1}, {U: 6, V: 2}, {U: 6, V: 3}, {U: 6, V: 4},
	}
	return buildInstance(t, edges, 7, 0, 5)
}

func checkCommon(t *testing.T, in *ltm.Instance, order []graph.Node, name string) {
	t.Helper()
	if len(order) == 0 || order[0] != in.T() {
		t.Fatalf("%s: order %v must start with t", name, order)
	}
	seen := map[graph.Node]bool{}
	for _, v := range order {
		if v == in.S() {
			t.Errorf("%s: initiator ranked", name)
		}
		if in.InitialFriendSet().Contains(v) {
			t.Errorf("%s: current friend %d ranked", name, v)
		}
		if seen[v] {
			t.Errorf("%s: duplicate %d", name, v)
		}
		seen[v] = true
	}
	// Every invitable node appears exactly once.
	want := in.Graph().NumNodes() - 1 - len(in.InitialFriends())
	if len(order) != want {
		t.Errorf("%s: ranked %d nodes, want %d", name, len(order), want)
	}
}

func TestHighDegreeRank(t *testing.T) {
	in := fixture(t)
	order := HighDegree{}.Rank(in)
	checkCommon(t, in, order, "HD")
	// After t, the hub 6 (degree 4) must come first among candidates
	// {2,4,6} (1 and 3 are N_s).
	if order[1] != 6 {
		t.Errorf("HD order = %v, want hub 6 right after t", order)
	}
}

func TestShortestPathRank(t *testing.T) {
	in := fixture(t)
	order := ShortestPath{}.Rank(in)
	checkCommon(t, in, order, "SP")
	// The two 3-hop paths are interior-disjoint: {2} and {4} must precede
	// the hub 6, which lies on no shortest path.
	pos := map[graph.Node]int{}
	for i, v := range order {
		pos[v] = i
	}
	if pos[6] < pos[2] || pos[6] < pos[4] {
		t.Errorf("SP order = %v: hub should come after path nodes", order)
	}
}

func TestShortestPathDisconnected(t *testing.T) {
	// s and t disconnected: SP must still rank all candidates (degree
	// fallback).
	edges := []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}, {U: 3, V: 4}}
	in := buildInstance(t, edges, 5, 0, 4)
	order := ShortestPath{}.Rank(in)
	checkCommon(t, in, order, "SP")
}

func TestRandomRankDeterministicPerSeed(t *testing.T) {
	in := fixture(t)
	a := Random{Seed: 5}.Rank(in)
	b := Random{Seed: 5}.Rank(in)
	checkCommon(t, in, a, "Random")
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different orders")
		}
	}
	c := Random{Seed: 6}.Rank(in)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical orders (suspicious)")
	}
}

func TestPrefixSet(t *testing.T) {
	order := []graph.Node{5, 2, 7}
	s := PrefixSet(10, order, 2)
	if s.Len() != 2 || !s.Contains(5) || !s.Contains(2) || s.Contains(7) {
		t.Errorf("PrefixSet = %v", s.Members())
	}
	// Clamp beyond length.
	if got := PrefixSet(10, order, 99).Len(); got != 3 {
		t.Errorf("clamped PrefixSet size = %d, want 3", got)
	}
	if got := PrefixSet(10, order, 0).Len(); got != 0 {
		t.Errorf("empty PrefixSet size = %d", got)
	}
}

func TestNames(t *testing.T) {
	if (HighDegree{}).Name() != "HD" || (ShortestPath{}).Name() != "SP" || (Random{}).Name() != "Random" {
		t.Error("baseline names changed; reports depend on them")
	}
}

func TestRankersOnRandomGraphs(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(30)
		b := graph.NewBuilder(n)
		for i := 1; i < n; i++ {
			b.AddEdge(graph.Node(i), graph.Node(rng.Intn(i)))
		}
		for i := 0; i < n; i++ {
			b.AddEdge(graph.Node(rng.Intn(n)), graph.Node(rng.Intn(n)))
		}
		g := b.Build()
		if g.HasEdge(0, graph.Node(n-1)) {
			continue
		}
		in, err := ltm.NewInstance(g, weights.NewDegree(g), 0, graph.Node(n-1))
		if err != nil {
			continue
		}
		for _, r := range []Ranker{HighDegree{}, ShortestPath{}, Random{Seed: seed}} {
			checkCommon(t, in, r.Rank(in), r.Name())
		}
	}
}
