// Package baselines implements the comparison heuristics of the paper's
// evaluation (Sec. IV): the High-Degree (HD) and Shortest-Path (SP)
// invitation strategies, plus a Random strawman used in ablations.
//
// Each baseline is a Ranker producing a priority order over candidate
// invitees; the invitation set of budget k is the first k entries. The
// target t is always ranked first — an invitation set that omits t can
// never succeed, so seeding it keeps comparisons about the intermediate
// users (the RAF output always contains t for the same reason). Current
// friends (N_s) and the initiator are excluded: inviting them is a no-op
// under the model.
package baselines

import (
	"math/rand"
	"sort"

	"repro/internal/graph"
	"repro/internal/ltm"
)

// Ranker produces a full priority order of candidate invitees for an
// instance. Implementations are stateless and safe for concurrent use.
type Ranker interface {
	// Name identifies the baseline in reports ("HD", "SP", "Random").
	Name() string
	// Rank returns every invitable node (t first, then by the baseline's
	// preference). The order's prefix of length k is the baseline's
	// invitation set of budget k.
	Rank(in *ltm.Instance) []graph.Node
}

// candidates returns all nodes except s and N_s, excluding t as well
// (callers place t first).
func candidates(in *ltm.Instance) []graph.Node {
	g := in.Graph()
	nsSet := in.InitialFriendSet()
	out := make([]graph.Node, 0, g.NumNodes())
	for v := 0; v < g.NumNodes(); v++ {
		node := graph.Node(v)
		if node == in.S() || node == in.T() || nsSet.Contains(node) {
			continue
		}
		out = append(out, node)
	}
	return out
}

// HighDegree ranks candidates by descending degree (ties by node id), the
// HD baseline of Sec. IV.
type HighDegree struct{}

var _ Ranker = HighDegree{}

// Name implements Ranker.
func (HighDegree) Name() string { return "HD" }

// Rank implements Ranker.
func (HighDegree) Rank(in *ltm.Instance) []graph.Node {
	g := in.Graph()
	cand := candidates(in)
	sort.SliceStable(cand, func(i, j int) bool {
		di, dj := g.Degree(cand[i]), g.Degree(cand[j])
		if di != dj {
			return di > dj
		}
		return cand[i] < cand[j]
	})
	return append([]graph.Node{in.T()}, cand...)
}

// ShortestPath ranks candidates along successive interior-disjoint
// shortest s–t paths (the SP baseline): first the nodes of the shortest
// path in order, then the next disjoint shortest path, and so on. When no
// further disjoint path exists, remaining candidates follow in descending
// degree order (the paper does not specify a tail rule; high degree is the
// natural filler and is documented in DESIGN.md).
type ShortestPath struct{}

var _ Ranker = ShortestPath{}

// Name implements Ranker.
func (ShortestPath) Name() string { return "SP" }

// Rank implements Ranker.
func (ShortestPath) Rank(in *ltm.Instance) []graph.Node {
	g := in.Graph()
	nsSet := in.InitialFriendSet()
	order := []graph.Node{in.T()}
	seen := graph.NewNodeSetOf(g.NumNodes(), in.T())
	paths := g.SuccessiveDisjointPaths(in.S(), in.T(), g.NumNodes())
	for _, p := range paths {
		for _, v := range p {
			if v == in.S() || nsSet.Contains(v) || seen.Contains(v) {
				continue
			}
			seen.Add(v)
			order = append(order, v)
		}
	}
	rest := candidates(in)
	sort.SliceStable(rest, func(i, j int) bool {
		di, dj := g.Degree(rest[i]), g.Degree(rest[j])
		if di != dj {
			return di > dj
		}
		return rest[i] < rest[j]
	})
	for _, v := range rest {
		if !seen.Contains(v) {
			order = append(order, v)
		}
	}
	return order
}

// Random ranks candidates uniformly at random (seeded), a strawman lower
// bound for ablations.
type Random struct {
	// Seed fixes the shuffle.
	Seed int64
}

var _ Ranker = Random{}

// Name implements Ranker.
func (Random) Name() string { return "Random" }

// Rank implements Ranker.
func (r Random) Rank(in *ltm.Instance) []graph.Node {
	cand := candidates(in)
	rng := rand.New(rand.NewSource(r.Seed))
	rng.Shuffle(len(cand), func(i, j int) { cand[i], cand[j] = cand[j], cand[i] })
	return append([]graph.Node{in.T()}, cand...)
}

// PrefixSet returns the invitation set formed by the first k entries of
// order (k is clamped to len(order)).
func PrefixSet(universe int, order []graph.Node, k int) *graph.NodeSet {
	if k > len(order) {
		k = len(order)
	}
	s := graph.NewNodeSet(universe)
	for _, v := range order[:k] {
		s.Add(v)
	}
	return s
}
