// Budget: the *maximum* active friending variant — with only b invitations
// allowed, which users should the initiator contact to maximize the chance
// the target accepts? Sweeps the budget on a citation-network analog and
// compares the realization-based solution with the HD baseline.
//
// Run with: go run ./examples/budget
package main

import (
	"context"
	"fmt"
	"log"

	af "repro"
)

func main() {
	ctx := context.Background()

	g, err := af.GenerateDataset("HepTh", 0.05, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d users, %d friendships (HepTh analog)\n", g.NumNodes(), g.NumEdges())

	// A moderately distant pair: pick the first valid pair among
	// deterministic candidates with low-but-positive reachability.
	var p *af.Problem
	for sTry := 0; sTry < g.NumNodes() && p == nil; sTry += 97 {
		for tTry := g.NumNodes() - 1; tTry > 0; tTry -= 131 {
			cand, err := af.NewProblem(g, af.Node(sTry), af.Node(tTry))
			if err != nil {
				continue
			}
			pm, err := cand.Pmax(ctx, 4000, 1)
			if err != nil {
				log.Fatal(err)
			}
			if pm >= 0.02 && pm <= 0.5 {
				p = cand
				break
			}
		}
	}
	if p == nil {
		log.Fatal("no suitable pair found; change the seed")
	}
	pmax, err := p.Pmax(ctx, 50000, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pair: s=%d → t=%d, p_max ≈ %.4f\n\n", p.Initiator(), p.Target(), pmax)

	fmt.Println("budget sweep (maximize f(I) subject to |I| ≤ b):")
	fmt.Println("budget  |I|   f(maxAF)  f(HD)     capture")
	for _, budget := range []int{2, 5, 10, 25, 50, 100} {
		sol, err := p.SolveMax(ctx, budget, 40000, 4)
		if err != nil {
			if af.IsUnreachable(err) {
				fmt.Printf("%-6d  target unreachable\n", budget)
				continue
			}
			log.Fatal(err)
		}
		fMax, err := p.AcceptanceProbability(ctx, sol.Invited, 40000, 5)
		if err != nil {
			log.Fatal(err)
		}
		fHD, err := p.AcceptanceProbability(ctx, p.HighDegreeSet(budget), 40000, 6)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6d  %-4d  %.5f   %.5f   %4.1f%% of p_max\n",
			budget, len(sol.Invited), fMax, fHD, 100*fMax/pmax)
	}
	fmt.Println("\nthe realization-based strategy concentrates the budget on whole")
	fmt.Println("high-probability paths, while HD spends it on popular but unaligned users.")
}
