// Quickstart: build a small social graph by hand, solve the Minimum
// Active Friending problem with RAF, and verify the solution's acceptance
// probability with both estimators.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	af "repro"
)

func main() {
	// A hand-made network (node 0 = initiator, node 9 = target):
	//
	//	0 ── 1 ── 2 ── 3 ── 9
	//	│         │        │
	//	4 ── 5 ── 6 ── 7 ──┘
	//	          │
	//	          8 (pendant)
	b := af.NewGraphBuilder(10)
	for _, e := range [][2]af.Node{
		{0, 1}, {1, 2}, {2, 3}, {3, 9},
		{0, 4}, {4, 5}, {5, 6}, {6, 7}, {7, 9},
		{2, 6}, {6, 8},
	} {
		b.AddEdge(e[0], e[1])
	}
	g := b.Build()

	p, err := af.NewProblem(g, 0, 9)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// What is achievable at all? p_max and the α = 1 optimum V_max.
	pmax, err := p.Pmax(ctx, 100000, 1)
	if err != nil {
		log.Fatal(err)
	}
	vmax, err := p.Vmax()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("p_max ≈ %.4f, V_max = %v (the unique minimum set achieving it)\n", pmax, vmax)
	fmt.Printf("note: pendant node 8 is not in V_max — it lies on no path to the target\n\n")

	// Ask RAF for 60%% of the achievable probability.
	sol, err := p.Solve(ctx, af.Options{Alpha: 0.6, Eps: 0.05, N: 1000, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RAF invitation set (α=0.6): %v  (%d of %d users)\n",
		sol.Invited, len(sol.Invited), g.NumNodes())

	// Verify with the two independent estimators (Lemma 1 says they agree).
	rev, err := p.AcceptanceProbability(ctx, sol.Invited, 100000, 2)
	if err != nil {
		log.Fatal(err)
	}
	fwd, err := p.AcceptanceProbabilityForward(ctx, sol.Invited, 100000, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("f(I) reverse estimator: %.4f, forward simulator: %.4f\n", rev, fwd)
	fmt.Printf("guarantee: f(I) ≥ (α−ε)·p_max = %.4f ✓\n", 0.55*pmax)
}
