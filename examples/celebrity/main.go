// Celebrity: the paper's motivating scenario — a peripheral user wants to
// befriend an influential, well-connected target. On a preferential-
// attachment network (the Wiki analog), RAF is compared with the HD and SP
// heuristics at equal invitation budget, and with V_max.
//
// Run with: go run ./examples/celebrity
package main

import (
	"context"
	"fmt"
	"log"

	af "repro"
)

func main() {
	ctx := context.Background()

	// A scaled Wiki-Vote analog: heavy-tailed degrees, one giant component.
	g, err := af.GenerateDataset("Wiki", 0.1, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d users, %d friendships\n", g.NumNodes(), g.NumEdges())

	// The "celebrity" is the highest-degree user; the initiator is a
	// low-degree user not adjacent to them.
	celebrity, initiator := af.Node(-1), af.Node(-1)
	maxDeg := -1
	for v := 0; v < g.NumNodes(); v++ {
		if d := g.Degree(af.Node(v)); d > maxDeg {
			maxDeg = d
			celebrity = af.Node(v)
		}
	}
	// Pick the lowest-degree user not adjacent to the celebrity.
	minDeg := g.NumNodes()
	for v := 0; v < g.NumNodes(); v++ {
		node := af.Node(v)
		if node == celebrity || g.HasEdge(node, celebrity) || g.Degree(node) == 0 {
			continue
		}
		if d := g.Degree(node); d < minDeg {
			minDeg = d
			initiator = node
		}
	}
	if initiator < 0 {
		log.Fatal("no suitable initiator found")
	}
	fmt.Printf("initiator %d (degree %d) wants to friend celebrity %d (degree %d)\n\n",
		initiator, g.Degree(initiator), celebrity, maxDeg)

	p, err := af.NewProblem(g, initiator, celebrity)
	if err != nil {
		log.Fatal(err)
	}
	pmax, err := p.Pmax(ctx, 50000, 1)
	if err != nil {
		log.Fatal(err)
	}
	vmax, err := p.Vmax()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("p_max ≈ %.4f; inviting all %d users of V_max achieves it\n", pmax, len(vmax))

	sol, err := p.Solve(ctx, af.Options{Alpha: 0.3, Eps: 0.05, N: 10000, Seed: 11})
	if err != nil {
		if af.IsUnreachable(err) {
			log.Fatal("celebrity unreachable from initiator — try another seed")
		}
		log.Fatal(err)
	}
	k := len(sol.Invited)

	fRAF, err := p.AcceptanceProbability(ctx, sol.Invited, 50000, 2)
	if err != nil {
		log.Fatal(err)
	}
	fHD, err := p.AcceptanceProbability(ctx, p.HighDegreeSet(k), 50000, 3)
	if err != nil {
		log.Fatal(err)
	}
	fSP, err := p.AcceptanceProbability(ctx, p.ShortestPathSet(k), 50000, 4)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nstrategy comparison at equal budget (|I| = %d ≪ |V_max| = %d):\n", k, len(vmax))
	fmt.Printf("  RAF            f = %.4f   (%.0f%% of p_max)\n", fRAF, 100*fRAF/pmax)
	fmt.Printf("  HighDegree     f = %.4f   — popularity alone rarely builds a path\n", fHD)
	fmt.Printf("  ShortestPath   f = %.4f   — one path helps, overlap is ignored\n", fSP)
}
