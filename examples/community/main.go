// Community: cross-community friending on a stochastic block model. Two
// dense communities are joined by a thin bridge; the initiator lives in
// one, the target in the other, so every useful invitation path crosses
// the bridge. The example sweeps α and shows how the invitation budget
// grows as more of the achievable probability is demanded — and that the
// invitations concentrate on the bridge.
//
// Run with: go run ./examples/community
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	af "repro"
	"repro/internal/gen"
)

func main() {
	ctx := context.Background()

	// Two communities of 120, pIn = 0.08, pOut = 0.002 (thin bridge).
	g, err := gen.StochasticBlock([]int{120, 120}, 0.08, 0.002, rand.New(rand.NewSource(5)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d users, %d friendships, two communities of 120\n", g.NumNodes(), g.NumEdges())

	// Initiator in community A (ids 0..119), target in community B.
	s, t := af.Node(3), af.Node(200)
	if g.HasEdge(s, t) {
		log.Fatal("sampled pair is adjacent; change the seed")
	}
	p, err := af.NewProblem(g, s, t)
	if err != nil {
		log.Fatal(err)
	}
	pmax, err := p.Pmax(ctx, 50000, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initiator %d (community A) → target %d (community B), p_max ≈ %.4f\n\n", s, t, pmax)

	fmt.Println("alpha sweep (invitation budget vs demanded fraction of p_max):")
	fmt.Println("alpha   |I|   f(I)     bridge-side invitees")
	for _, alpha := range []float64{0.2, 0.4, 0.6, 0.8} {
		sol, err := p.Solve(ctx, af.Options{Alpha: alpha, Eps: 0.05, N: 1000, Seed: 9})
		if err != nil {
			if af.IsUnreachable(err) {
				fmt.Printf("%.2f    target unreachable\n", alpha)
				continue
			}
			log.Fatal(err)
		}
		f, err := p.AcceptanceProbability(ctx, sol.Invited, 50000, 2)
		if err != nil {
			log.Fatal(err)
		}
		inB := 0
		for _, v := range sol.Invited {
			if v >= 120 {
				inB++
			}
		}
		fmt.Printf("%.2f    %-4d  %.4f   %d of %d in the target's community\n",
			alpha, len(sol.Invited), f, inB, len(sol.Invited))
	}

	fmt.Println("\ninterpretation: the minimum invitation sets cross the thin")
	fmt.Println("bridge and then fan out inside the target's community — the")
	fmt.Println("initiator's own community contributes only its bridge endpoints.")
}
